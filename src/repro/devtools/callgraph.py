"""Whole-program call-graph construction for the cross-module lint passes.

The per-file rules (REP001–REP010) see one AST at a time, so an invariant
violation laundered through a helper function — a wall-clock read two
calls away from a deterministic zone, a lock acquired down a call chain —
is invisible to them.  This module parses the whole project **once**,
resolves a conservative call graph, and hands it to the interprocedural
passes in :mod:`repro.devtools.flow` (REP011–REP013).

Design points, mirroring the paper's precompute-an-index-once idiom:

* **One parse per file per run.**  ASTs are cached process-wide keyed by
  ``(path, mtime_ns, size)`` (:func:`parse_cached`), so the per-file rules,
  the project build, and repeated ``run_lint`` calls in one process (the
  test suite) never re-parse an unchanged file.  This is what keeps the
  whole-tree analysis inside its CI wall-time budget.
* **Conservative resolution.**  The graph over-approximates: a call that
  *may* target a project function produces an edge.  Resolved forms:
  module-level functions (direct, via import alias, via module attribute),
  methods (``self.m()`` through the project MRO, ``Cls.m()``,
  ``obj.m()`` for locals whose class is statically known from a
  constructor call or annotation, and a unique-attribute fallback when
  exactly one project class defines the name), ``functools.partial(f, …)``
  sites, and bare function references passed as call arguments —
  which is how the algorithm registry and the serving layer register
  callbacks.  Nested ``def``\\ s become their own nodes with a ``ref``
  edge from the enclosing function (conservatively assumed called).
* **Cycle-safe queries.**  Recursion is expected; traversals
  (:meth:`CallGraph.reachable`, the fixpoints in ``flow``) are iterative
  worklist algorithms over the finite node set.

Everything here is stdlib-only so linting never imports numpy or the
engines it is analyzing.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ParsedModule",
    "Project",
    "parse_cached",
]

#: Process-wide AST cache: absolute path -> (mtime_ns, size, tree).
#: Rules treat trees as read-only, so sharing across runs is safe.
_AST_CACHE: Dict[str, Tuple[int, int, ast.Module]] = {}


def parse_cached(path: pathlib.Path, source: Optional[str] = None) -> ast.Module:
    """Parse ``path`` reusing the mtime-keyed cache when it is unchanged.

    ``source`` may be supplied when the caller already read the file (the
    lint driver does, for suppression scanning) to avoid a second read on
    a cache miss.
    """
    path = pathlib.Path(path)
    key = str(path)
    try:
        stat = path.stat()
        mtime_ns, size = stat.st_mtime_ns, stat.st_size
    except OSError:
        mtime_ns, size = -1, -1
    cached = _AST_CACHE.get(key)
    if cached is not None and cached[0] == mtime_ns and cached[1] == size:
        return cached[2]
    if source is None:
        source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=key)
    if mtime_ns >= 0:
        _AST_CACHE[key] = (mtime_ns, size, tree)
    return tree


def _dotted_module_name(relpath: str) -> str:
    parts = pathlib.PurePosixPath(relpath.replace("\\", "/")).parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + (last,)
    return ".".join(parts)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method node in the project."""

    qname: str
    name: str
    module: "ParsedModule"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_qname: Optional[str]
    lineno: int

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def relpath(self) -> str:
        return self.module.relpath


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods, declared bases and lock-valued attributes."""

    qname: str
    name: str
    module: "ParsedModule"
    node: ast.ClassDef
    bases: List[str] = dataclasses.field(default_factory=list)
    methods: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    #: attribute name -> lineno of ``self.attr = threading.Lock()/RLock()/
    #: Condition()`` assignments found in any method body.
    lock_attrs: Dict[str, int] = dataclasses.field(default_factory=dict)


class ParsedModule:
    """One parsed source module plus its import table."""

    def __init__(self, path: pathlib.Path, relpath: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.tree = tree
        self.dotted = _dotted_module_name(relpath)
        #: local alias -> fully qualified origin (module or module.attr).
        self.imports: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                module = node.module
                if node.level:
                    # Relative import: resolve against this module's package.
                    package = self.dotted.split(".")
                    # ``from . import x`` inside pkg/__init__.py refers to
                    # pkg; inside pkg/mod.py it also refers to pkg.
                    if self.path.name != "__init__.py":
                        package = package[:-1]
                    package = package[: len(package) - (node.level - 1)]
                    module = ".".join(package + [node.module])
                for alias in node.names:
                    if alias.name != "*":
                        self.imports[alias.asname or alias.name] = f"{module}.{alias.name}"
            elif isinstance(node, ast.ImportFrom) and node.module is None and node.level:
                package = self.dotted.split(".")
                if self.path.name != "__init__.py":
                    package = package[:-1]
                package = package[: len(package) - (node.level - 1)]
                for alias in node.names:
                    if alias.name != "*":
                        self.imports[alias.asname or alias.name] = (
                            ".".join(package + [alias.name])
                        )

    def attribute(self, name: str) -> Optional[object]:
        """Constant module-level assignment ``name = <expr>``, if any."""
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == name:
                    try:
                        return ast.literal_eval(node.value)
                    except (ValueError, SyntaxError):
                        return None
        return None


_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _is_lock_expr(value: ast.expr) -> bool:
    """Whether ``value`` constructs a threading lock primitive."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return True
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return True
    return False


class Project:
    """All parsed modules of one lint run, indexed for whole-program passes."""

    def __init__(self) -> None:
        self.modules: Dict[str, ParsedModule] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: class short name -> qnames (for base-class resolution fallback).
        self._class_by_name: Dict[str, List[str]] = {}
        #: method/attr name -> function qnames defining it (unique-attribute
        #: fallback during call resolution).
        self._methods_by_name: Dict[str, List[str]] = {}
        #: module-level lock assignments: (module, name) -> lineno.
        self.module_locks: Dict[Tuple[str, str], int] = {}

    # ---------------------------------------------------------------- build

    @classmethod
    def build(
        cls, entries: Iterable[Tuple[pathlib.Path, str, ast.Module]]
    ) -> "Project":
        """Index ``(path, relpath, tree)`` triples into a project."""
        project = cls()
        for path, relpath, tree in entries:
            module = ParsedModule(path, relpath, tree)
            project.modules[module.dotted] = module
            project._index_module(module)
        return project

    def _index_module(self, module: ParsedModule) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_qname=None, prefix=module.dotted)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_lock_expr(node.value):
                    self.module_locks[(module.dotted, target.id)] = node.lineno

    def _add_class(self, module: ParsedModule, node: ast.ClassDef) -> None:
        qname = f"{module.dotted}.{node.name}" if module.dotted else node.name
        info = ClassInfo(qname=qname, name=node.name, module=module, node=node)
        for base in node.bases:
            rendered = _render_chain(base)
            if rendered:
                info.bases.append(rendered)
        self.classes[qname] = info
        self._class_by_name.setdefault(node.name, []).append(qname)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(
                    module, child, class_qname=qname, prefix=qname
                )
                info.methods[child.name] = method
                for stmt in ast.walk(child):
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Attribute)
                        and isinstance(stmt.targets[0].value, ast.Name)
                        and stmt.targets[0].value.id == "self"
                        and _is_lock_expr(stmt.value)
                    ):
                        info.lock_attrs.setdefault(
                            stmt.targets[0].attr, stmt.lineno
                        )

    def _add_function(
        self,
        module: ParsedModule,
        node: ast.AST,
        class_qname: Optional[str],
        prefix: str,
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qname = f"{prefix}.{name}" if prefix else name
        info = FunctionInfo(
            qname=qname,
            name=name,
            module=module,
            node=node,
            class_qname=class_qname,
            lineno=node.lineno,  # type: ignore[attr-defined]
        )
        self.functions[qname] = info
        self._methods_by_name.setdefault(name, []).append(qname)
        # Nested defs become their own nodes; CallGraph adds a ref edge
        # from the encloser so flow passes see through the closure.
        for child in node.body:  # type: ignore[attr-defined]
            self._index_nested(module, child, class_qname, qname)
        return info

    def _index_nested(
        self,
        module: ParsedModule,
        node: ast.stmt,
        class_qname: Optional[str],
        prefix: str,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, child, class_qname, prefix)
            elif not isinstance(child, ast.ClassDef):
                if isinstance(child, ast.stmt):
                    self._index_nested(module, child, class_qname, prefix)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return

    # ----------------------------------------------------------- resolution

    def resolve_class(self, name: str, module: ParsedModule) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted or imported) class name to its info."""
        origin = module.imports.get(name.split(".")[0])
        candidates = []
        if origin is not None:
            rest = name.split(".")[1:]
            candidates.append(".".join([origin] + rest))
        if module.dotted:
            candidates.append(f"{module.dotted}.{name}")
        candidates.append(name)
        for candidate in candidates:
            found = self.classes.get(candidate)
            if found is not None:
                return found
            # ``from pkg import Cls`` where Cls is re-exported: fall back to
            # the unique project class with that short name.
            short = candidate.split(".")[-1]
            by_name = self._class_by_name.get(short, [])
            if len(by_name) == 1:
                return self.classes[by_name[0]]
        return None

    def mro(self, class_qname: str) -> List[ClassInfo]:
        """Breadth-first linearisation of the project-resolvable bases."""
        result: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            result.append(info)
            for base in info.bases:
                resolved = self.resolve_class(base, info.module)
                if resolved is not None:
                    queue.append(resolved.qname)
        return result

    def resolve_method(self, class_qname: str, attr: str) -> Optional[FunctionInfo]:
        for info in self.mro(class_qname):
            method = info.methods.get(attr)
            if method is not None:
                return method
        return None

    def unique_method(self, attr: str) -> Optional[FunctionInfo]:
        """The single project function named ``attr``, if unambiguous.

        Used as a conservative fallback for ``obj.attr()`` calls on objects
        whose class is not statically known — when exactly one project
        function has that name, the call is assumed to (possibly) target
        it.  Dunder and otherwise ubiquitous names are excluded by the
        caller.
        """
        qnames = self._methods_by_name.get(attr, [])
        if len(qnames) == 1:
            return self.functions[qnames[0]]
        return None

    def lock_attr_owner(self, class_qname: str, attr: str) -> Optional[ClassInfo]:
        """The class in ``class_qname``'s MRO declaring lock attr ``attr``."""
        for info in self.mro(class_qname):
            if attr in info.lock_attrs:
                return info
        return None


def _render_chain(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One resolved potential call edge ``caller -> callee``."""

    callee: str
    lineno: int
    col: int
    kind: str  # "call" | "method" | "partial" | "ref" | "nested"


#: Attribute names too generic for the unique-attribute fallback.
_FALLBACK_EXCLUDED = {
    "append", "add", "get", "items", "keys", "values", "pop", "update",
    "copy", "join", "split", "strip", "format", "read", "write", "close",
    "extend", "sort", "index", "count", "clear", "remove", "insert",
    "acquire", "release", "wait", "notify", "notify_all", "set", "start",
    "run", "stop", "check", "load", "save", "build", "reset",
}


class CallGraph:
    """Adjacency of :class:`CallSite` edges over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, List[CallSite]] = {q: [] for q in project.functions}
        self.callers: Dict[str, List[Tuple[str, CallSite]]] = {
            q: [] for q in project.functions
        }

    # ---------------------------------------------------------------- build

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project)
        for info in project.functions.values():
            graph._resolve_function(info)
        for caller, sites in graph.edges.items():
            for site in sites:
                graph.callers[site.callee].append((caller, site))
        return graph

    def _add_edge(self, caller: str, site: CallSite) -> None:
        self.edges[caller].append(site)

    def _resolve_function(self, info: FunctionInfo) -> None:
        module = info.module
        local_types = self._local_types(info)
        for node in self._own_body(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested def: ref edge (conservatively assumed called).
                nested_qname = f"{info.qname}.{node.name}"
                if nested_qname in self.project.functions:
                    self._add_edge(
                        info.qname,
                        CallSite(nested_qname, node.lineno, node.col_offset, "nested"),
                    )
                continue
            if isinstance(node, ast.Call):
                self._resolve_call(info, node, module, local_types)
                for argument in list(node.args) + [kw.value for kw in node.keywords]:
                    self._resolve_reference(info, argument, module)

    def _own_body(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk ``node``'s body without descending into nested defs."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            current = stack.pop()
            yield current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(current))

    def _local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Map local names to project class qnames when statically known."""
        types: Dict[str, str] = {}
        if info.class_qname is not None:
            types["self"] = info.class_qname
            types["cls"] = info.class_qname
        arguments = getattr(info.node, "args", None)
        if arguments is not None:
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            ):
                if arg.annotation is not None:
                    annotation = arg.annotation
                    if isinstance(annotation, ast.Constant) and isinstance(
                        annotation.value, str
                    ):
                        name: Optional[str] = annotation.value
                    else:
                        name = _render_chain(annotation)
                    if name:
                        resolved = self.project.resolve_class(
                            name.strip("\"'"), info.module
                        )
                        if resolved is not None:
                            types[arg.arg] = resolved.qname
        for node in self._own_body(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                chain = _render_chain(node.value.func)
                if chain:
                    resolved = self.project.resolve_class(chain, info.module)
                    if resolved is not None:
                        types[node.targets[0].id] = resolved.qname
        return types

    def _resolve_call(
        self,
        info: FunctionInfo,
        node: ast.Call,
        module: ParsedModule,
        local_types: Dict[str, str],
    ) -> None:
        func = node.func
        lineno, col = node.lineno, node.col_offset
        # functools.partial(f, ...) — edge to f.
        chain = _render_chain(func)
        if chain is not None:
            origin = module.imports.get(chain.split(".")[0], chain.split(".")[0])
            full = ".".join([origin] + chain.split(".")[1:])
            if full in ("functools.partial", "partial") and node.args:
                target = self._resolve_target(node.args[0], info, module, local_types)
                if target is not None:
                    self._add_edge(
                        info.qname, CallSite(target.qname, lineno, col, "partial")
                    )
        if isinstance(func, ast.Name):
            target = self._resolve_name(func.id, module)
            if target is not None:
                self._add_edge(info.qname, CallSite(target.qname, lineno, col, "call"))
                return
            # Constructor call: edge to __init__ when the project defines it.
            klass = self.project.resolve_class(func.id, module)
            if klass is not None:
                init = self.project.resolve_method(klass.qname, "__init__")
                if init is not None:
                    self._add_edge(
                        info.qname, CallSite(init.qname, lineno, col, "call")
                    )
            return
        if isinstance(func, ast.Attribute):
            target = self._resolve_attribute_call(func, info, module, local_types)
            if target is not None:
                self._add_edge(info.qname, CallSite(target.qname, lineno, col, "method"))

    def _resolve_name(
        self, name: str, module: ParsedModule
    ) -> Optional[FunctionInfo]:
        origin = module.imports.get(name)
        if origin is not None and origin in self.project.functions:
            return self.project.functions[origin]
        if module.dotted:
            local = f"{module.dotted}.{name}"
            if local in self.project.functions:
                return self.project.functions[local]
        if origin is not None:
            # ``from pkg import helper`` re-exported through __init__:
            # fall back to the unique project function with that name.
            short = origin.split(".")[-1]
            if short not in _FALLBACK_EXCLUDED:
                unique = self.project.unique_method(short)
                if unique is not None:
                    return unique
        return None

    def _resolve_attribute_call(
        self,
        func: ast.Attribute,
        info: FunctionInfo,
        module: ParsedModule,
        local_types: Dict[str, str],
    ) -> Optional[FunctionInfo]:
        attr = func.attr
        value = func.value
        # self.m() / cls.m() / typed-local.m()
        if isinstance(value, ast.Name):
            owner = local_types.get(value.id)
            if owner is not None:
                method = self.project.resolve_method(owner, attr)
                if method is not None:
                    return method
                return None  # known class, unknown attr: not a project call
            # ClassName.m()
            klass = self.project.resolve_class(value.id, module)
            if klass is not None:
                return self.project.resolve_method(klass.qname, attr)
            # module alias: pkg.helper() / pkg.sub.helper()
        chain = _render_chain(func)
        if chain is not None:
            head, *rest = chain.split(".")
            origin = module.imports.get(head)
            if origin is not None and rest:
                qname = ".".join([origin] + rest)
                if qname in self.project.functions:
                    return self.project.functions[qname]
                # pkg.Class.method / pkg.Class() constructor chains
                klass = self.project.classes.get(".".join([origin] + rest[:-1]))
                if klass is not None:
                    return self.project.resolve_method(klass.qname, rest[-1])
        # ClassName().m() — constructor result
        if isinstance(value, ast.Call):
            vchain = _render_chain(value.func)
            if vchain is not None:
                klass = self.project.resolve_class(vchain, module)
                if klass is not None:
                    return self.project.resolve_method(klass.qname, attr)
        # Unique-attribute fallback: obj.m() with unknown obj.
        if attr not in _FALLBACK_EXCLUDED and not attr.startswith("__"):
            return self.project.unique_method(attr)
        return None

    def _resolve_target(
        self,
        node: ast.expr,
        info: FunctionInfo,
        module: ParsedModule,
        local_types: Dict[str, str],
    ) -> Optional[FunctionInfo]:
        """Resolve a *reference* (not a call) to a project function."""
        if isinstance(node, ast.Name):
            return self._resolve_name(node.id, module)
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute_call(node, info, module, local_types)
        return None

    def _resolve_reference(
        self, info: FunctionInfo, node: ast.expr, module: ParsedModule
    ) -> None:
        """Function names passed as arguments register a may-call edge."""
        if isinstance(node, ast.Name):
            target = self._resolve_name(node.id, module)
            if target is not None:
                self._add_edge(
                    info.qname,
                    CallSite(target.qname, node.lineno, node.col_offset, "ref"),
                )
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            # self.method as a callback argument.
            if node.value.id == "self" and info.class_qname is not None:
                method = self.project.resolve_method(info.class_qname, node.attr)
                if method is not None:
                    self._add_edge(
                        info.qname,
                        CallSite(method.qname, node.lineno, node.col_offset, "ref"),
                    )

    # --------------------------------------------------------------- queries

    def callees(self, qname: str) -> List[CallSite]:
        return self.edges.get(qname, [])

    def reachable(self, start: Sequence[str]) -> Set[str]:
        """All functions reachable from ``start`` (worklist, cycle-safe)."""
        seen: Set[str] = set()
        queue = [q for q in start if q in self.edges]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.edges.get(current, ()):
                if site.callee not in seen:
                    queue.append(site.callee)
        return seen

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump for ``repro lint --callgraph``."""
        return {
            "version": 1,
            "functions": {
                qname: {
                    "path": info.relpath,
                    "line": info.lineno,
                    "class": info.class_qname,
                }
                for qname, info in sorted(self.project.functions.items())
            },
            "edges": {
                qname: [
                    {"callee": s.callee, "line": s.lineno, "kind": s.kind}
                    for s in sites
                ]
                for qname, sites in sorted(self.edges.items())
                if sites
            },
        }
