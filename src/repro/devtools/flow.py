"""Interprocedural dataflow passes over the project call graph.

Three whole-program analyses run on the :class:`~repro.devtools.callgraph.
CallGraph`, each the cross-module counterpart of an existing per-file
rule:

* :class:`DeterminismTaint` (REP011) — taint *sources* (wall-clock reads,
  ``np.random``/``random`` global state, ``os.urandom``/``uuid``, ``id()``,
  iteration over ``set`` values feeding order-sensitive sinks) propagated
  backwards through the call graph into the declared deterministic zones;
  any zone function that can reach a source is reported with the full
  call chain.
* :class:`LockOrderAnalysis` (REP012) — the lock-acquisition graph
  inferred from ``with self._lock``-style sites *across* functions,
  checked against the hierarchy :mod:`repro.devtools.lockcheck` declares;
  cycles the runtime monitor could only catch if the schedule happened to
  exercise them are found with zero execution.
* :class:`ExceptionContractAnalysis` (REP013) — each contracted public
  API function's raisable-exception set computed through the call graph
  (with ``try/except`` filtering at every call site) and checked against
  the declared contract table seeded from the :mod:`repro.exceptions`
  taxonomy.

All passes are worklist fixpoints with provenance: every propagated fact
remembers its next hop toward the originating site, so findings carry a
human-readable call chain.  Chains name functions only (no line numbers)
to keep finding fingerprints stable while code moves around.

Modules can opt into the analyses' scoped checks:

* ``__repro_deterministic__ = True`` declares the module part of the
  deterministic zone (fixtures and future subsystems use this; the
  shipped zones are listed in :data:`DETERMINISTIC_ZONES`).
* ``__repro_exception_contract__ = {"func" | "Cls.method": ["ExcName",
  ...]}`` declares per-module exception contracts merged over
  :data:`DEFAULT_EXCEPTION_CONTRACTS`.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.callgraph import CallGraph, FunctionInfo, Project
from repro.devtools.lockcheck import LOCK_HIERARCHY, STATIC_LOCK_MAP

__all__ = [
    "DETERMINISTIC_ZONES",
    "DEFAULT_EXCEPTION_CONTRACTS",
    "DeterminismTaint",
    "ExceptionContractAnalysis",
    "LockOrderAnalysis",
    "SourceSite",
    "TaintFinding",
    "LockFinding",
    "ContractFinding",
]

#: Dotted module prefixes whose functions must stay bit-for-bit
#: deterministic: the sketch/RIS engine, the crash-safe runtime (replay),
#: the incremental score engine, and the influence index (grown==fresh).
DETERMINISTIC_ZONES: Tuple[str, ...] = (
    "repro.sketches",
    "repro.runtime",
    "repro.scoring",
    "repro.serving.index",
    # Fingerprints, CSR compilation and seed-exact generators are what
    # replay keys on; nondeterminism here silently invalidates every zone
    # downstream.
    "repro.graphs",
)

#: Modules whose nondeterminism is *parameter-controlled* (``seed=None``
#: opts in); taint does not propagate through them.  This is the one
#: sanctioned boundary between "all randomness" and "explicit seeds".
TAINT_BOUNDARY_MODULES: Tuple[str, ...] = ("repro.utils.rng",)

ZONE_MARKER = "__repro_deterministic__"
CONTRACT_MARKER = "__repro_exception_contract__"

_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(LOCK_HIERARCHY)}


# =====================================================================
# Shared helpers
# =====================================================================


def _render_chain(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _format_call_chain(chain: Sequence[str]) -> str:
    return " -> ".join(chain)


def _is_zone_module(project: Project, dotted: str, zones: Sequence[str]) -> bool:
    for zone in zones:
        if dotted == zone or dotted.startswith(zone + "."):
            return True
    module = project.modules.get(dotted)
    if module is not None and module.attribute(ZONE_MARKER) is True:
        return True
    return False


# =====================================================================
# REP011 — determinism taint
# =====================================================================


@dataclasses.dataclass(frozen=True)
class SourceSite:
    """One direct nondeterminism source inside a function body."""

    kind: str
    detail: str
    qname: str
    relpath: str
    lineno: int
    col: int


@dataclasses.dataclass(frozen=True)
class TaintFinding:
    """A zone function that can reach a nondeterminism source."""

    function: FunctionInfo
    chain: Tuple[str, ...]  # zone function first, source's function last
    source: SourceSite

    @property
    def message(self) -> str:
        route = (
            f" via {_format_call_chain(self.chain)}" if len(self.chain) > 1 else ""
        )
        return (
            f"deterministic-zone function {self.function.qname} reaches "
            f"{self.source.detail} in {self.source.qname}{route} — inject the "
            "value (clock/rng/order) as a parameter or sort before iterating"
        )


_WALL_CLOCK_TIME = {"time", "time_ns", "ctime", "localtime", "gmtime", "strftime"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today", "fromtimestamp"}
#: Callables that consume an iterable order-insensitively; a set flowing
#: into these is not an ordering hazard.
_ORDER_INSENSITIVE = {
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
}
#: Callables whose output exposes the iteration order of their argument.
_ORDER_SENSITIVE = {"list", "tuple", "iter", "enumerate", "reversed"}
_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


class DeterminismTaint:
    """Backward taint propagation from nondeterminism sources into zones."""

    def __init__(
        self,
        graph: CallGraph,
        zones: Sequence[str] = DETERMINISTIC_ZONES,
        boundaries: Sequence[str] = TAINT_BOUNDARY_MODULES,
    ) -> None:
        self.graph = graph
        self.project = graph.project
        self.zones = tuple(zones)
        self.boundaries = tuple(boundaries)

    # ------------------------------------------------------- source scanning

    def direct_sources(self, info: FunctionInfo) -> List[SourceSite]:
        sources: List[SourceSite] = []
        module = info.module
        parents: Dict[ast.AST, ast.AST] = {}
        body = list(_own_body(info.node))
        for node in body:
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        set_locals = self._set_typed_locals(info)
        for node in body:
            if isinstance(node, ast.Call):
                source = self._call_source(node, module)
                if source is not None:
                    kind, detail = source
                    sources.append(
                        SourceSite(
                            kind, detail, info.qname, info.relpath,
                            node.lineno, node.col_offset,
                        )
                    )
                # list(s) / iter(s) / enumerate(s) over a set value.
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE
                    and node.args
                    and self._is_set_valued(node.args[0], set_locals)
                ):
                    sources.append(
                        SourceSite(
                            "set-order",
                            f"{node.func.id}() over a set (unordered)",
                            info.qname, info.relpath,
                            node.lineno, node.col_offset,
                        )
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_valued(node.iter, set_locals):
                    sources.append(
                        SourceSite(
                            "set-order", "for-loop over a set (unordered)",
                            info.qname, info.relpath,
                            node.iter.lineno, node.iter.col_offset,
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if any(
                    self._is_set_valued(gen.iter, set_locals)
                    for gen in node.generators
                ):
                    parent = parents.get(node)
                    if (
                        isinstance(node, ast.GeneratorExp)
                        and isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id in _ORDER_INSENSITIVE
                    ):
                        continue
                    sources.append(
                        SourceSite(
                            "set-order", "comprehension over a set (unordered)",
                            info.qname, info.relpath,
                            node.lineno, node.col_offset,
                        )
                    )
        return sources

    def _call_source(
        self, node: ast.Call, module: object
    ) -> Optional[Tuple[str, str]]:
        imports: Dict[str, str] = module.imports  # type: ignore[attr-defined]
        if isinstance(node.func, ast.Name):
            if node.func.id == "id":
                return ("id", "id() (interpreter address, varies per run)")
            origin = imports.get(node.func.id)
            if origin == "time.time":
                return ("wall-clock", "wall-clock read time.time()")
            if origin in ("datetime.datetime.now", "datetime.datetime.utcnow"):
                return ("wall-clock", f"wall-clock read {origin}()")
            if origin == "os.urandom":
                return ("entropy", "os.urandom() (OS entropy)")
            if origin is not None and origin.startswith("uuid.uuid"):
                return ("entropy", f"{origin}() (entropy-derived)")
            if origin is not None and origin.startswith("secrets."):
                return ("entropy", f"{origin}() (OS entropy)")
            return None
        chain = _render_chain(node.func)
        if chain is None:
            return None
        parts = chain.split(".")
        head, tail = parts[0], parts[-1]
        origin = imports.get(head, head)
        full = ".".join([origin] + parts[1:])
        if origin == "time" and tail in _WALL_CLOCK_TIME:
            return ("wall-clock", f"wall-clock read time.{tail}()")
        if origin in ("datetime", "datetime.datetime", "datetime.date"):
            if tail in _WALL_CLOCK_DATETIME:
                return ("wall-clock", f"wall-clock read {origin}.{tail}()")
        if origin == "os" and tail == "urandom":
            return ("entropy", "os.urandom() (OS entropy)")
        if origin == "uuid" and tail.startswith("uuid"):
            return ("entropy", f"uuid.{tail}() (entropy-derived)")
        if origin == "secrets":
            return ("entropy", f"secrets.{tail}() (OS entropy)")
        if origin == "random" and len(parts) > 1:
            return ("global-rng", f"stdlib random.{tail}() (hidden global state)")
        if full.startswith("numpy.random.") or chain.startswith("np.random."):
            suffix = full.split("random.", 1)[1] if "random." in full else tail
            return (
                "global-rng",
                f"numpy.random.{suffix} (module-level RNG state)",
            )
        return None

    def _set_typed_locals(self, info: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        arguments = getattr(info.node, "args", None)
        if arguments is not None:
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            ):
                if arg.annotation is not None:
                    chain = _render_chain(
                        arg.annotation.value
                        if isinstance(arg.annotation, ast.Subscript)
                        else arg.annotation
                    )
                    if chain and chain.split(".")[-1] in _SET_ANNOTATIONS:
                        names.add(arg.arg)
        for node in _own_body(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                if self._is_set_valued(node.value, names):
                    names.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                chain = _render_chain(
                    node.annotation.value
                    if isinstance(node.annotation, ast.Subscript)
                    else node.annotation
                )
                if chain and chain.split(".")[-1] in _SET_ANNOTATIONS:
                    names.add(node.target.id)
        return names

    def _is_set_valued(self, node: ast.expr, set_locals: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_valued(node.func.value, set_locals)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_valued(node.left, set_locals) or self._is_set_valued(
                node.right, set_locals
            )
        return False

    # ----------------------------------------------------------- propagation

    def _is_boundary(self, qname: str) -> bool:
        for module in self.boundaries:
            if qname == module or qname.startswith(module + "."):
                return True
        return False

    def run(self) -> List[TaintFinding]:
        """Propagate taint to callers; report minimal zone frontier."""
        # taint[q] = (source, next hop toward it or None when q contains it)
        taint: Dict[str, Tuple[SourceSite, Optional[str]]] = {}
        queue: List[str] = []
        for qname, info in self.project.functions.items():
            if self._is_boundary(qname):
                continue
            sources = self.direct_sources(info)
            if sources:
                # Deterministic pick: first by position.
                best = min(sources, key=lambda s: (s.lineno, s.col, s.kind))
                taint[qname] = (best, None)
                queue.append(qname)
        # BFS up the caller edges (shortest chains win, FIFO).
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            source, _ = taint[current]
            for caller, _site in self.graph.callers.get(current, ()):
                if caller in taint or self._is_boundary(caller):
                    continue
                taint[caller] = (source, current)
                queue.append(caller)

        zone_tainted: Set[str] = set()
        for qname in taint:
            info = self.project.functions.get(qname)
            if info is not None and _is_zone_module(
                self.project, info.module.dotted, self.zones
            ):
                zone_tainted.add(qname)

        findings: List[TaintFinding] = []
        for qname in sorted(zone_tainted):
            source, next_hop = taint[qname]
            if next_hop is not None and next_hop in zone_tainted:
                continue  # a zone function closer to the source reports it
            chain = [qname]
            hop = next_hop
            while hop is not None:
                chain.append(hop)
                hop = taint[hop][1]
            findings.append(
                TaintFinding(
                    function=self.project.functions[qname],
                    chain=tuple(chain),
                    source=source,
                )
            )
        return findings


# =====================================================================
# REP012 — static lock order
# =====================================================================


@dataclasses.dataclass(frozen=True)
class LockAcquisition:
    """One statically visible lock acquisition site."""

    key: str  # aggregation key: level name when ranked, else owner.attr
    level: str  # human label
    rank: Optional[int]
    qname: str
    relpath: str
    lineno: int
    col: int


@dataclasses.dataclass(frozen=True)
class LockFinding:
    """An inversion edge or a cycle in the inferred acquisition graph."""

    kind: str  # "inversion" | "cycle"
    held: LockAcquisition
    acquired: LockAcquisition
    chain: Tuple[str, ...]
    cycle: Tuple[str, ...] = ()

    @property
    def message(self) -> str:
        if self.kind == "cycle":
            return (
                "lock acquisition cycle "
                + " -> ".join(self.cycle)
                + f" (edge {self.held.level} -> {self.acquired.level} via "
                + _format_call_chain(self.chain)
                + ") — a latent deadlock even if no schedule has hit it yet"
            )
        return (
            f"acquires {self.acquired.level!r} while holding {self.held.level!r} "
            f"via {_format_call_chain(self.chain)} — declared order is "
            + " -> ".join(LOCK_HIERARCHY)
        )


@dataclasses.dataclass(frozen=True)
class _LockEdge:
    held: LockAcquisition
    acquired: LockAcquisition
    chain: Tuple[str, ...]
    intra: bool  # entirely within one function (REP007's territory)


class LockOrderAnalysis:
    """Infer the cross-function lock graph and check it against the hierarchy."""

    #: Call-edge kinds followed while a lock is held.  ``ref``/``partial``
    #: references registered under a lock typically execute later, outside
    #: it, and would flood the graph with false edges.
    FOLLOWED_KINDS = ("call", "method", "nested")

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.project = graph.project

    # -------------------------------------------------------- per-function

    def _resolve_lock(
        self, expr: ast.expr, info: FunctionInfo
    ) -> Optional[Tuple[str, str, Optional[int]]]:
        """Resolve a ``with`` context expression to (key, level, rank)."""
        if isinstance(expr, ast.Name):
            ranked = STATIC_LOCK_MAP.get((None, expr.id))
            if ranked is not None:
                rank, level = ranked
                return (level, level, rank)
            dotted = info.module.dotted
            if (dotted, expr.id) in self.project.module_locks:
                key = f"{dotted}.{expr.id}" if dotted else expr.id
                return (key, key, None)
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and info.class_qname is not None
        ):
            klass = self.project.classes.get(info.class_qname)
            short = klass.name if klass is not None else None
            if short is not None:
                ranked = STATIC_LOCK_MAP.get((short, expr.attr))
                if ranked is not None:
                    rank, level = ranked
                    return (level, level, rank)
            owner = self.project.lock_attr_owner(info.class_qname, expr.attr)
            if owner is not None:
                key = f"{owner.qname}.{expr.attr}"
                return (key, key, None)
        return None

    def _function_acquisitions(
        self, info: FunctionInfo
    ) -> Tuple[List[LockAcquisition], List[_LockEdge], List[Tuple[LockAcquisition, Tuple[int, int]]]]:
        """(direct acquisitions, intra-function edges, calls-under-lock).

        The third element pairs each acquisition with the positions of
        call expressions lexically inside its ``with`` body.
        """
        acquisitions: List[LockAcquisition] = []
        intra: List[_LockEdge] = []
        under: List[Tuple[LockAcquisition, Tuple[int, int]]] = []

        def walk(node: ast.AST, held: List[LockAcquisition]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    acquired_here: List[LockAcquisition] = []
                    for item in child.items:
                        resolved = self._resolve_lock(item.context_expr, info)
                        if resolved is None:
                            continue
                        key, level, rank = resolved
                        acq = LockAcquisition(
                            key=key, level=level, rank=rank, qname=info.qname,
                            relpath=info.relpath,
                            lineno=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                        )
                        acquisitions.append(acq)
                        for holder in held + acquired_here:
                            if holder.key != acq.key:
                                intra.append(
                                    _LockEdge(
                                        held=holder, acquired=acq,
                                        chain=(info.qname,), intra=True,
                                    )
                                )
                        acquired_here.append(acq)
                    walk(child, held + acquired_here)
                else:
                    if isinstance(child, ast.Call) and held:
                        position = (child.lineno, child.col_offset)
                        for holder in held:
                            under.append((holder, position))
                    walk(child, held)

        walk(info.node, [])
        return acquisitions, intra, under

    # -------------------------------------------------------------- fixpoint

    def run(self) -> List[LockFinding]:
        project = self.project
        per_function: Dict[str, Tuple[List[LockAcquisition], List[_LockEdge], List[Tuple[LockAcquisition, Tuple[int, int]]]]] = {}
        for qname, info in project.functions.items():
            per_function[qname] = self._function_acquisitions(info)

        # acquires*[q]: key -> (acquisition, chain of qnames from q to it).
        closure: Dict[str, Dict[str, Tuple[LockAcquisition, Tuple[str, ...]]]] = {
            qname: {
                acq.key: (acq, (qname,))
                for acq in per_function[qname][0]
            }
            for qname in project.functions
        }
        changed = True
        while changed:
            changed = False
            for qname in project.functions:
                mine = closure[qname]
                for site in self.graph.edges.get(qname, ()):
                    if site.kind not in self.FOLLOWED_KINDS:
                        continue
                    for key, (acq, chain) in closure.get(site.callee, {}).items():
                        if key not in mine:
                            mine[key] = (acq, (qname,) + chain)
                            changed = True

        # Edge construction: lock held at a with-site, call under it leads
        # to any acquisition in the callee's closure.
        edges: List[_LockEdge] = []
        for qname in project.functions:
            _, intra, under = per_function[qname]
            edges.extend(intra)
            if not under:
                continue
            # call position -> callee qnames (only followed kinds).
            by_position: Dict[Tuple[int, int], List[str]] = {}
            for site in self.graph.edges.get(qname, ()):
                if site.kind in self.FOLLOWED_KINDS:
                    by_position.setdefault((site.lineno, site.col), []).append(
                        site.callee
                    )
            for holder, position in under:
                for callee in by_position.get(position, ()):
                    for key, (acq, chain) in closure.get(callee, {}).items():
                        if key == holder.key:
                            continue  # reentrant same-level acquisition
                        edges.append(
                            _LockEdge(
                                held=holder, acquired=acq,
                                chain=(qname,) + chain, intra=False,
                            )
                        )

        findings: List[LockFinding] = []
        seen: Set[Tuple[str, str, Tuple[str, ...]]] = set()
        adjacency: Dict[str, Dict[str, _LockEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.held.key, {}).setdefault(
                edge.acquired.key, edge
            )
            if edge.intra:
                # Same-function nesting is REP007's job when both ranked;
                # unranked/unordered pairs still feed the cycle check below.
                continue
            held_rank, acq_rank = edge.held.rank, edge.acquired.rank
            if held_rank is not None and acq_rank is not None:
                if held_rank >= acq_rank:
                    dedup = (edge.held.key, edge.acquired.key, edge.chain)
                    if dedup not in seen:
                        seen.add(dedup)
                        findings.append(
                            LockFinding(
                                kind="inversion", held=edge.held,
                                acquired=edge.acquired, chain=edge.chain,
                            )
                        )

        cycle = self._find_cycle(adjacency)
        if cycle is not None:
            nodes, first_edge = cycle
            findings.append(
                LockFinding(
                    kind="cycle", held=first_edge.held,
                    acquired=first_edge.acquired, chain=first_edge.chain,
                    cycle=tuple(nodes),
                )
            )
        return findings

    @staticmethod
    def _find_cycle(
        adjacency: Dict[str, Dict[str, _LockEdge]]
    ) -> Optional[Tuple[List[str], _LockEdge]]:
        visiting: Set[str] = set()
        done: Set[str] = set()
        path: List[str] = []

        def visit(node: str) -> Optional[List[str]]:
            if node in done:
                return None
            if node in visiting:
                return path[path.index(node):] + [node]
            visiting.add(node)
            path.append(node)
            for neighbour in sorted(adjacency.get(node, {})):
                found = visit(neighbour)
                if found is not None:
                    return found
            path.pop()
            visiting.discard(node)
            done.add(node)
            return None

        for start in sorted(adjacency):
            found = visit(start)
            if found is not None:
                edge = adjacency[found[0]][found[1]]
                return found, edge
        return None


# =====================================================================
# REP013 — exception contracts
# =====================================================================

#: Exceptions any function may raise without declaring them: protocol
#: obligations and unreachable-code guards, mirroring REP003's exemptions.
ALWAYS_ALLOWED_EXCEPTIONS: FrozenSet[str] = frozenset(
    {
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "StopAsyncIteration",
        "KeyboardInterrupt",
        "SystemExit",
        "AttributeError",  # __getattr__ protocol shims
    }
)

#: Minimal builtin exception hierarchy for subclass checks (enough to
#: evaluate ``except Exception`` / ``except LookupError`` handlers and the
#: taxonomy's builtin bases).
_BUILTIN_BASES: Dict[str, Tuple[str, ...]] = {
    "Exception": ("BaseException",),
    "ArithmeticError": ("Exception",),
    "AssertionError": ("Exception",),
    "AttributeError": ("Exception",),
    "EOFError": ("Exception",),
    "FileExistsError": ("OSError",),
    "FileNotFoundError": ("OSError",),
    "IOError": ("OSError",),
    "ImportError": ("Exception",),
    "IndexError": ("LookupError",),
    "InterruptedError": ("OSError",),
    "KeyError": ("LookupError",),
    "KeyboardInterrupt": ("BaseException",),
    "LookupError": ("Exception",),
    "MemoryError": ("Exception",),
    "NotImplementedError": ("RuntimeError",),
    "OSError": ("Exception",),
    "OverflowError": ("ArithmeticError",),
    "PermissionError": ("OSError",),
    "RecursionError": ("RuntimeError",),
    "RuntimeError": ("Exception",),
    "StopAsyncIteration": ("Exception",),
    "StopIteration": ("Exception",),
    "SystemExit": ("BaseException",),
    "TimeoutError": ("OSError",),
    "TypeError": ("Exception",),
    "UnicodeDecodeError": ("ValueError",),
    "UnicodeEncodeError": ("ValueError",),
    "ValueError": ("Exception",),
    "ZeroDivisionError": ("ArithmeticError",),
}

#: Contract table for the library's public entry points, seeded from the
#: repro.exceptions taxonomy: every path from these functions may raise
#: only the listed roots (plus :data:`ALWAYS_ALLOWED_EXCEPTIONS`).  A new
#: bare ``ValueError`` three calls deep fails lint here even though the
#: per-file REP003 cannot see across the call.
DEFAULT_EXCEPTION_CONTRACTS: Dict[str, Tuple[str, ...]] = {
    "repro.api.run_experiment": ("ReproError",),
    "repro.api.build_estimator": ("ReproError",),
    "repro.serving.service.InfluenceService.get_index": ("ReproError",),
    "repro.serving.service.InfluenceService.evaluate": ("ReproError",),
    "repro.serving.service.InfluenceService.evaluate_many": ("ReproError",),
    "repro.serving.service.InfluenceService.select": ("ReproError",),
    "repro.serving.service.InfluenceService.hot_swap": ("ReproError",),
    "repro.serving.index.InfluenceIndex.build": ("ReproError",),
    "repro.serving.index.InfluenceIndex.grow": ("ReproError",),
    "repro.serving.index.InfluenceIndex.select": ("ReproError",),
    "repro.serving.index.InfluenceIndex.evaluate": ("ReproError",),
    "repro.serving.artifact.load_index_artifact": ("ReproError",),
    "repro.serving.artifact.save_index_artifact": ("ReproError",),
    "repro.runtime.pool.SupervisedPool.run": ("ReproError",),
    "repro.scoring.engine.ScoreEngine.mark_active": ("ReproError",),
}


@dataclasses.dataclass(frozen=True)
class RaiseSite:
    exception: str
    qname: str
    relpath: str
    lineno: int


@dataclasses.dataclass(frozen=True)
class ContractFinding:
    """A contracted entry point that can leak an undeclared exception."""

    function: FunctionInfo
    exception: str
    site: RaiseSite
    chain: Tuple[str, ...]
    allowed: Tuple[str, ...]

    @property
    def message(self) -> str:
        route = (
            f" via {_format_call_chain(self.chain)}" if len(self.chain) > 1 else ""
        )
        return (
            f"{self.function.qname} can raise {self.exception} (raised in "
            f"{self.site.qname}{route}) but its contract only allows "
            + "/".join(self.allowed)
            + " — catch-and-wrap at the boundary, or extend the declared "
            "contract"
        )


class ExceptionTaxonomy:
    """Subclass relation over project exception classes + builtins."""

    def __init__(self, project: Project) -> None:
        self._bases: Dict[str, Tuple[str, ...]] = dict(_BUILTIN_BASES)
        for info in project.classes.values():
            bases = tuple(base.split(".")[-1] for base in info.bases)
            if bases:
                self._bases[info.name] = bases

    def ancestors(self, name: str) -> Set[str]:
        seen: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop()
            for base in self._bases.get(current, ()):
                if base not in seen:
                    seen.add(base)
                    queue.append(base)
        return seen

    def is_subclass(self, name: str, base: str) -> bool:
        return name == base or base in self.ancestors(name)

    def caught_by(self, exception: str, handlers: FrozenSet[str]) -> bool:
        for handler in sorted(handlers):
            if handler in ("Exception", "BaseException"):
                return True
            if self.is_subclass(exception, handler):
                return True
        return False


class ExceptionContractAnalysis:
    """Compute raisable sets through the call graph; check contracts."""

    FOLLOWED_KINDS = ("call", "method", "nested", "partial", "ref")

    def __init__(
        self,
        graph: CallGraph,
        contracts: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.graph = graph
        self.project = graph.project
        self.taxonomy = ExceptionTaxonomy(graph.project)
        merged: Dict[str, Tuple[str, ...]] = dict(
            contracts if contracts is not None else DEFAULT_EXCEPTION_CONTRACTS
        )
        for dotted, module in graph.project.modules.items():
            declared = module.attribute(CONTRACT_MARKER)
            if isinstance(declared, dict):
                for name, allowed in declared.items():
                    if isinstance(allowed, (list, tuple)):
                        qname = f"{dotted}.{name}" if dotted else str(name)
                        merged[qname] = tuple(str(a) for a in allowed)
        self.contracts = merged

    # -------------------------------------------------------- per-function

    def _direct_facts(
        self, info: FunctionInfo
    ) -> Tuple[List[Tuple[str, RaiseSite, FrozenSet[str]]], Dict[Tuple[int, int], FrozenSet[str]]]:
        """(direct raises with their handler context, call-site handler map)."""
        raises: List[Tuple[str, RaiseSite, FrozenSet[str]]] = []
        call_handlers: Dict[Tuple[int, int], FrozenSet[str]] = {}
        module = info.module

        def handler_names(handler: ast.ExceptHandler) -> List[str]:
            if handler.type is None:
                return ["BaseException"]
            types = (
                list(handler.type.elts)
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            names: List[str] = []
            for node in types:
                chain = _render_chain(node)
                if chain is not None:
                    names.append(chain.split(".")[-1])
            return names

        def walk(node: ast.AST, caught: FrozenSet[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Try):
                    names: Set[str] = set()
                    for handler in child.handlers:
                        names.update(handler_names(handler))
                    inner = caught | frozenset(names)
                    for stmt in child.body:
                        walk_stmt(stmt, inner)
                    for handler in child.handlers:
                        walk(handler, caught)
                    for stmt in child.orelse + child.finalbody:
                        walk_stmt(stmt, caught)
                    continue
                if isinstance(child, ast.Raise) and child.exc is not None:
                    exc = child.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    chain = _render_chain(exc)
                    if chain is not None:
                        name = chain.split(".")[-1]
                        origin = module.imports.get(chain.split(".")[0])
                        if origin is not None and "." not in chain:
                            name = origin.split(".")[-1]
                        if name[:1].isupper():
                            raises.append(
                                (
                                    name,
                                    RaiseSite(
                                        name, info.qname, info.relpath,
                                        child.lineno,
                                    ),
                                    caught,
                                )
                            )
                if isinstance(child, ast.Call):
                    call_handlers.setdefault(
                        (child.lineno, child.col_offset), caught
                    )
                walk(child, caught)

        def walk_stmt(stmt: ast.stmt, caught: FrozenSet[str]) -> None:
            # The statement itself plus its subtree, under ``caught``.
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                exc = stmt.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                chain = _render_chain(exc)
                if chain is not None:
                    name = chain.split(".")[-1]
                    if name[:1].isupper():
                        raises.append(
                            (
                                name,
                                RaiseSite(
                                    name, info.qname, info.relpath, stmt.lineno
                                ),
                                caught,
                            )
                        )
            if isinstance(stmt, ast.Call):
                call_handlers.setdefault(
                    (stmt.lineno, stmt.col_offset), caught
                )
            walk(stmt, caught)

        walk(info.node, frozenset())
        return raises, call_handlers

    # -------------------------------------------------------------- fixpoint

    def run(self) -> List[ContractFinding]:
        project = self.project
        direct: Dict[str, List[Tuple[str, RaiseSite, FrozenSet[str]]]] = {}
        handlers_at: Dict[str, Dict[Tuple[int, int], FrozenSet[str]]] = {}
        for qname, info in project.functions.items():
            raises, call_handlers = self._direct_facts(info)
            direct[qname] = raises
            handlers_at[qname] = call_handlers

        # raisable[q]: exc -> (site, next hop or None)
        raisable: Dict[str, Dict[str, Tuple[RaiseSite, Optional[str]]]] = {
            qname: {} for qname in project.functions
        }
        for qname, facts in direct.items():
            for name, site, caught in facts:
                if self.taxonomy.caught_by(name, caught):
                    continue
                raisable[qname].setdefault(name, (site, None))

        changed = True
        while changed:
            changed = False
            for qname in project.functions:
                mine = raisable[qname]
                my_handlers = handlers_at[qname]
                for call_site in self.graph.edges.get(qname, ()):
                    if call_site.kind not in self.FOLLOWED_KINDS:
                        continue
                    caught = my_handlers.get(
                        (call_site.lineno, call_site.col), frozenset()
                    )
                    for name, (site, _hop) in raisable.get(
                        call_site.callee, {}
                    ).items():
                        if name in mine:
                            continue
                        if self.taxonomy.caught_by(name, caught):
                            continue
                        mine[name] = (site, call_site.callee)
                        changed = True

        findings: List[ContractFinding] = []
        for qname, allowed in sorted(self.contracts.items()):
            info = project.functions.get(qname)
            if info is None:
                continue
            effective = tuple(allowed)
            for name, (site, hop) in sorted(raisable.get(qname, {}).items()):
                if name in ALWAYS_ALLOWED_EXCEPTIONS:
                    continue
                if any(
                    self.taxonomy.is_subclass(name, base) for base in effective
                ):
                    continue
                chain = [qname]
                current = hop
                while current is not None:
                    chain.append(current)
                    current = raisable[current].get(name, (None, None))[1]
                findings.append(
                    ContractFinding(
                        function=info, exception=name, site=site,
                        chain=tuple(chain), allowed=effective,
                    )
                )
        return findings
