"""AST-based invariant linter: rule registry, suppressions, baseline, reporters.

The library's headline guarantee — bit-for-bit deterministic seed sets
across every backend — rests on a handful of project-wide invariants
(all randomness flows through :mod:`repro.utils.rng` tokens, no wall
clock in deterministic paths, one exception taxonomy, a declared lock
hierarchy in the serving layer).  Tests exercise those invariants only
on the paths they happen to cover; this module makes them machine
checked on every file of ``src/``.

Pieces:

* :class:`Rule` — one invariant, implemented as a visitor over a parsed
  module; registered via :func:`register` under a stable ``REPxxx`` code.
* :class:`Finding` — one violation, with a stable fingerprint used for
  baseline matching (rule, path, message — line numbers are allowed to
  drift without invalidating the baseline).
* ``# repro: noqa[REP001]`` — per-line, per-rule suppression.  Bare
  ``# repro: noqa`` is deliberately not supported: every suppression
  names the rule it silences.
* :class:`Baseline` — a committed JSON file of known debt so adopting a
  new rule never blocks CI; the goal state (and the current state of
  this repository) is an **empty** baseline.
* :func:`run_lint` + :func:`render_text`/:func:`render_json` — driver
  and reporters for the ``repro lint`` CLI and the CI job.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
import re
import time
import tokenize
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Type, Union

from repro.exceptions import LintError

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_source_files",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]

#: Suppression comments look like ``# repro: noqa[REP001]`` or
#: ``# repro: noqa[REP001,REP004]``.  The rule list is mandatory.
_NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa\[(?P<codes>[^\]]*)\]")

_CODE_PATTERN = re.compile(r"^REP\d{3}$")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location.

    ``fingerprint`` intentionally omits the line number so that unrelated
    edits moving code around do not churn a committed baseline; two
    identical messages in one file are disambiguated by the reporter, not
    the fingerprint (the baseline stores a count per fingerprint).
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }


class ModuleContext:
    """A parsed source module handed to every rule.

    ``relpath`` is the path relative to the lint root (stable across
    machines, used in findings and baselines); ``dotted`` is the module's
    import path when it lives under a package root (``repro.utils.rng``),
    used by rules that scope themselves to parts of the package.
    """

    def __init__(
        self,
        path: pathlib.Path,
        relpath: str,
        source: str,
        tree: Optional[ast.Module] = None,
    ) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=str(path))
        self.dotted = _dotted_name(relpath)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def in_package(self, *prefixes: str) -> bool:
        """Whether the module is (inside) any of the dotted ``prefixes``."""
        for prefix in prefixes:
            if self.dotted == prefix or self.dotted.startswith(prefix + "."):
                return True
        return False


def _dotted_name(relpath: str) -> str:
    parts = pathlib.PurePosixPath(relpath.replace("\\", "/")).parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + (last,)
    return ".".join(parts)


class Rule:
    """Base class for one lint rule.

    Subclasses set ``code`` (stable ``REPxxx`` identifier), ``name`` (a
    short kebab-case slug used in docs) and ``summary``, and implement
    :meth:`check` yielding findings.  Registration is explicit via the
    :func:`register` decorator so importing :mod:`repro.devtools.rules`
    is what populates the registry.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


class ProjectContext:
    """Whole-program view handed to :class:`ProjectRule` checks.

    Built once per lint run from the same parsed trees the per-file rules
    saw (one parse per file, via the mtime-keyed AST cache), so the
    cross-module pass adds call-graph construction and fixpoint time but
    no re-parsing.
    """

    def __init__(self, project: object, graph: object) -> None:
        # Typed as object to keep framework <-> callgraph import lazy;
        # concrete types are callgraph.Project / callgraph.CallGraph.
        self.project = project
        self.graph = graph

    @classmethod
    def build(
        cls, entries: Sequence[Tuple[pathlib.Path, str, ast.Module]]
    ) -> "ProjectContext":
        from repro.devtools.callgraph import CallGraph, Project

        project = Project.build([(str(p), rel, tree) for p, rel, tree in entries])
        return cls(project, CallGraph.build(project))


class ProjectRule(Rule):
    """A rule that needs the whole project, not one module at a time.

    Subclasses implement :meth:`check_project` instead of :meth:`check`;
    the driver runs them once after the per-file pass, against the call
    graph built from the same ASTs.  Findings still carry a (path, line)
    anchor and respect ``# repro: noqa[REPxxx]`` on that line, and their
    fingerprints feed the same baseline.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, relpath: str, line: int, column: int, message: str
    ) -> Finding:
        return Finding(
            path=relpath.replace("\\", "/"),
            line=line,
            column=column + 1,
            rule=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_class`` to the global registry."""
    code = rule_class.code
    if not _CODE_PATTERN.match(code):
        raise LintError(f"rule code {code!r} does not match REPxxx")
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise LintError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, in code order."""
    _ensure_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _REGISTRY[code]()
    except KeyError:
        raise LintError(
            f"unknown rule {code!r}; known rules: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _ensure_builtin_rules() -> None:
    # Importing the rules module triggers its @register decorators exactly
    # once; done lazily so framework <-> rules is not an import cycle.
    from repro.devtools import rules as _rules  # noqa: F401


def iter_source_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    """Yield ``.py`` files under ``paths`` in deterministic sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        else:
            raise LintError(f"lint target {path} does not exist")


def _suppressed_lines(source: str, path: pathlib.Path) -> Dict[int, set]:
    """Map line number -> set of rule codes suppressed on that line.

    Comments are found with :mod:`tokenize` (not a regex over raw lines)
    so a ``# repro: noqa[...]`` inside a string literal does not suppress
    anything.
    """
    suppressed: Dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_PATTERN.search(token.string)
            if not match:
                continue
            codes = {
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            }
            bad = [code for code in codes if not _CODE_PATTERN.match(code)]
            if bad or not codes:
                raise LintError(
                    f"{path}:{token.start[0]}: malformed suppression "
                    f"{token.string.strip()!r}: expected one or more REPxxx "
                    f"codes, got {sorted(bad) or 'nothing'}"
                )
            suppressed.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        # The AST parse will have raised a clearer error already; if it
        # parsed, a trailing tokenizer hiccup should not kill the lint run.
        pass
    return suppressed


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run: surviving findings plus bookkeeping.

    ``timings`` records wall seconds per phase (``per_file`` for the
    one-module-at-a-time rules, ``project`` for the whole-program pass) so
    the CI time-budget check reads the engine's own numbers instead of
    wrapping the process in ``time``.
    """

    findings: List[Finding]
    files_checked: int
    suppressed: int
    baselined: int
    stale_baseline: List[str]
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


class Baseline:
    """Committed record of known violations, matched by fingerprint count.

    The file format is trivially diffable JSON::

        {"version": 1, "findings": {"<fingerprint>": <count>, ...}}

    An entry's value may also be an object carrying a justification — the
    required form for analysis-limitation false positives, so every
    baselined finding says *why* it is allowed to stay::

        {"<fingerprint>": {"count": 1, "justification": "why this is a FP"}}

    A finding whose fingerprint is in the baseline (up to its count) is
    reported as *baselined*, not failing; baseline entries that no longer
    match anything are reported as *stale* so paid-down debt is removed
    from the file instead of lingering.  Together with ``--diff-baseline``
    failing on stale entries, the baseline can only ever shrink.
    """

    VERSION = 1

    def __init__(
        self,
        counts: Optional[Mapping[str, int]] = None,
        justifications: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.counts: Dict[str, int] = dict(counts or {})
        self.justifications: Dict[str, str] = dict(justifications or {})

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise LintError(
                f"baseline file {path} does not exist; create one with "
                "`repro lint --update-baseline`"
            ) from None
        except json.JSONDecodeError as error:
            raise LintError(f"baseline file {path} is not valid JSON: {error}") from error
        if not isinstance(data, dict) or data.get("version") != cls.VERSION:
            raise LintError(
                f"baseline file {path} has unsupported format "
                f"(expected version {cls.VERSION})"
            )
        findings = data.get("findings", {})
        if not isinstance(findings, dict):
            raise LintError(f"baseline file {path}: 'findings' must be a mapping")
        counts: Dict[str, int] = {}
        justifications: Dict[str, str] = {}
        for key, value in findings.items():
            if isinstance(value, int) and value > 0:
                counts[key] = value
            elif (
                isinstance(value, dict)
                and isinstance(value.get("count"), int)
                and value["count"] > 0
                and isinstance(value.get("justification"), str)
                and value["justification"].strip()
            ):
                counts[key] = value["count"]
                justifications[key] = value["justification"]
            else:
                raise LintError(
                    f"baseline file {path}: entry {key!r} must be a positive "
                    "count or {'count': N, 'justification': '...'} with a "
                    "non-empty justification"
                )
        return cls(counts, justifications)

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        justifications: Optional[Mapping[str, str]] = None,
    ) -> "Baseline":
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
        kept = {
            key: text
            for key, text in (justifications or {}).items()
            if key in counts
        }
        return cls(counts, kept)

    def save(self, path: pathlib.Path) -> None:
        entries: Dict[str, Union[int, Dict[str, object]]] = {}
        for key in sorted(self.counts):
            if key in self.justifications:
                entries[key] = {
                    "count": self.counts[key],
                    "justification": self.justifications[key],
                }
            else:
                entries[key] = self.counts[key]
        payload = {"version": self.VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, List[str]]:
        """Partition ``findings`` into (new, number_baselined, stale_keys)."""
        budget = dict(self.counts)
        new: List[Finding] = []
        baselined = 0
        for finding in findings:
            remaining = budget.get(finding.fingerprint, 0)
            if remaining > 0:
                budget[finding.fingerprint] = remaining - 1
                baselined += 1
            else:
                new.append(finding)
        stale = sorted(key for key, count in budget.items() if count > 0)
        return new, baselined, stale


def _load_module(path: pathlib.Path, relpath: str) -> Tuple[ModuleContext, Dict[int, set]]:
    """Read + parse one file (through the AST cache) with its noqa map."""
    from repro.devtools.callgraph import parse_cached

    source = path.read_text(encoding="utf-8")
    try:
        tree = parse_cached(path, source)
    except SyntaxError as error:
        raise LintError(f"{path}: cannot parse: {error}") from error
    module = ModuleContext(path, relpath, source, tree=tree)
    return module, _suppressed_lines(source, path)


def lint_file(
    path: pathlib.Path,
    relpath: str,
    rules: Sequence[Rule],
) -> Tuple[List[Finding], int]:
    """Lint one file with the per-file rules; (findings, suppressed count)."""
    module, suppressed_map = _load_module(path, relpath)
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        for finding in rule.check(module):
            if finding.rule in suppressed_map.get(finding.line, ()):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def run_lint(
    paths: Sequence[pathlib.Path],
    *,
    root: Optional[pathlib.Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with every registered rule.

    Per-file rules run module by module; :class:`ProjectRule` instances
    then run once against the whole-program context built from the very
    same parsed trees.
    """
    active = list(rules) if rules is not None else all_rules()
    file_rules = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    base = root or pathlib.Path.cwd()
    findings: List[Finding] = []
    suppressed = 0
    files = 0
    entries: List[Tuple[pathlib.Path, str, ast.Module]] = []
    suppressions: Dict[str, Dict[int, set]] = {}
    started = time.perf_counter()
    for path in iter_source_files([pathlib.Path(p) for p in paths]):
        try:
            relpath = str(path.resolve().relative_to(base.resolve()))
        except ValueError:
            relpath = str(path)
        relpath = relpath.replace("\\", "/")
        module, suppressed_map = _load_module(path, relpath)
        entries.append((path, relpath, module.tree))
        suppressions[relpath] = suppressed_map
        for rule in file_rules:
            for finding in rule.check(module):
                if finding.rule in suppressed_map.get(finding.line, ()):
                    suppressed += 1
                else:
                    findings.append(finding)
        files += 1
    per_file_seconds = time.perf_counter() - started
    project_seconds = 0.0
    if project_rules and entries:
        started = time.perf_counter()
        context = ProjectContext.build(entries)
        for rule in project_rules:
            for finding in rule.check_project(context):
                noqa = suppressions.get(finding.path, {})
                if finding.rule in noqa.get(finding.line, ()):
                    suppressed += 1
                else:
                    findings.append(finding)
        project_seconds = time.perf_counter() - started
    findings.sort()
    if baseline is not None:
        new, baselined, stale = baseline.split(findings)
    else:
        new, baselined, stale = findings, 0, []
    return LintReport(
        findings=new,
        files_checked=files,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        timings={
            "per_file": round(per_file_seconds, 6),
            "project": round(project_seconds, 6),
        },
    )


def render_text(report: LintReport) -> str:
    """Human reporter: one ``path:line:col CODE message`` line per finding."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column} "
            f"{finding.rule} {finding.message}"
        )
    for key in report.stale_baseline:
        lines.append(f"stale baseline entry (violation fixed — remove it): {key}")
    counts = report.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={count}" for rule, count in sorted(counts.items()))
        lines.append(f"found {len(report.findings)} new violation(s) ({per_rule})")
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.findings)} new, {report.baselined} baselined, "
        f"{report.suppressed} suppressed"
    )
    if report.timings:
        total = sum(report.timings.values())
        summary += f" in {total:.2f}s"
    lines.append(summary + (" — OK" if report.ok else ""))
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """JSON reporter for machine consumers (CI annotations, editors)."""
    payload = {
        "version": 1,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "stale_baseline": list(report.stale_baseline),
        "counts_by_rule": report.counts_by_rule(),
        "timings": report.timings,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2)
