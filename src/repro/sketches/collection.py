"""Compact CSR-backed storage for reverse-reachable set collections.

A collection holds ``num_sets`` RR sets over ``n`` nodes as two flat int64
arrays — ``members`` (all set members back to back) and ``indptr`` (set
boundaries) — instead of ``list[list[int]]``.  That keeps the per-set
overhead at zero Python objects, makes the coverage and spread queries pure
numpy reductions, and lets IMM grow ``theta`` block-wise while reusing every
previously drawn set: blocks are appended in O(1) and consolidated lazily on
first read.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


class RRSetCollection:
    """A growable collection of RR sets in CSR layout.

    Parameters
    ----------
    n:
        Number of nodes in the underlying graph (bounds the member values).
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.n = int(n)
        self._member_blocks: List[np.ndarray] = []
        self._size_blocks: List[np.ndarray] = []
        self._num_sets = 0
        self._members = _EMPTY
        self._indptr = np.zeros(1, dtype=np.int64)
        self._set_ids = _EMPTY
        self._dirty = False

    # ------------------------------------------------------------- building

    @classmethod
    def from_lists(cls, n: int, rr_sets: Sequence[Iterable[int]]) -> "RRSetCollection":
        """Build a collection from a ``list[list[int]]`` of RR sets."""
        collection = cls(n)
        if not rr_sets:
            return collection
        arrays = [np.asarray(list(s), dtype=np.int64) for s in rr_sets]
        sizes = np.array([a.size for a in arrays], dtype=np.int64)
        indptr = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        members = np.concatenate(arrays) if arrays else _EMPTY
        collection.append(members, indptr)
        return collection

    def append(self, members: np.ndarray, indptr: np.ndarray) -> None:
        """Append a CSR block of RR sets (as produced by the batch sampler)."""
        members = np.asarray(members, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != members.size:
            raise ValueError("indptr must start at 0 and end at members.size")
        sizes = np.diff(indptr)
        if sizes.size == 0:
            return
        self._member_blocks.append(members)
        self._size_blocks.append(sizes)
        self._num_sets += sizes.size
        self._dirty = True

    # -------------------------------------------------------------- queries

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def __len__(self) -> int:
        return self._num_sets

    @property
    def members(self) -> np.ndarray:
        """Flat member array (concatenation of every set's members)."""
        self._consolidate()
        return self._members

    @property
    def indptr(self) -> np.ndarray:
        """Set boundaries: set ``j`` is ``members[indptr[j]:indptr[j+1]]``."""
        self._consolidate()
        return self._indptr

    @property
    def set_ids(self) -> np.ndarray:
        """Set index of every entry of :attr:`members`."""
        self._consolidate()
        return self._set_ids

    def _consolidate(self) -> None:
        if not self._dirty:
            return
        members = [self._members] + self._member_blocks if self._members.size else (
            self._member_blocks
        )
        sizes_old = np.diff(self._indptr)
        sizes = np.concatenate([sizes_old] + self._size_blocks)
        self._members = np.concatenate(members) if members else _EMPTY
        self._indptr = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=self._indptr[1:])
        self._set_ids = np.repeat(
            np.arange(sizes.size, dtype=np.int64), sizes
        )
        self._member_blocks = []
        self._size_blocks = []
        self._dirty = False

    def set_members(self, index: int) -> np.ndarray:
        """Members of set ``index`` in discovery order."""
        members, indptr = self.members, self.indptr
        if not 0 <= index < self.num_sets:
            raise IndexError(f"set index {index} out of range 0..{self.num_sets - 1}")
        return members[indptr[index]:indptr[index + 1]]

    def as_lists(self) -> List[List[int]]:
        """The collection as ``list[list[int]]`` (tests and debugging)."""
        return [self.set_members(i).tolist() for i in range(self.num_sets)]

    def coverage_counts(self) -> np.ndarray:
        """Number of sets each node appears in (the initial greedy gains)."""
        return np.bincount(self.members, minlength=self.n)

    def covered_mask(self, seeds: Sequence[int]) -> np.ndarray:
        """Boolean mask over sets: which sets contain at least one seed."""
        mask = np.zeros(self.num_sets, dtype=bool)
        seeds = np.asarray(list(seeds), dtype=np.int64)
        if seeds.size == 0 or self.num_sets == 0:
            return mask
        seed_mask = np.zeros(self.n, dtype=bool)
        seed_mask[seeds] = True
        hits = seed_mask[self.members]
        mask[self.set_ids[hits]] = True
        return mask

    def covered_fraction(self, seeds: Sequence[int]) -> float:
        """Fraction of sets containing at least one seed."""
        if self.num_sets == 0:
            return 0.0
        return float(self.covered_mask(seeds).sum()) / self.num_sets

    def estimated_spread(self, seeds: Sequence[int]) -> float:
        """Sketch estimate of the expected spread of ``seeds``.

        The standard RIS estimator: ``n`` times the fraction of RR sets the
        seed set covers.  Accuracy grows with the number of sets (theta).
        Note this counts the seeds themselves (a root drawn at a seed is
        always covered); the paper's Def. 3 objective excludes seeds, so
        subtract ``len(seeds)`` when comparing against
        :class:`~repro.diffusion.simulation.MonteCarloEngine` estimates.
        """
        return self.covered_fraction(seeds) * self.n

    def __repr__(self) -> str:
        return (
            f"<RRSetCollection with {self.num_sets} sets over {self.n} nodes, "
            f"{self.members.size} members>"
        )
