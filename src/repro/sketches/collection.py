"""Compact CSR-backed storage for reverse-reachable set collections.

A collection holds ``num_sets`` RR sets over ``n`` nodes as two flat int64
arrays — ``members`` (all set members back to back) and ``indptr`` (set
boundaries) — instead of ``list[list[int]]``.  That keeps the per-set
overhead at zero Python objects, makes the coverage and spread queries pure
numpy reductions, and lets IMM grow ``theta`` block-wise while reusing every
previously drawn set: blocks are appended in O(1) and consolidated lazily on
first read.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SketchError, SketchIndexError

_EMPTY = np.empty(0, dtype=np.int64)

#: Member entries gathered per pass of the batched spread oracle; bounds the
#: transient ``requests x chunk`` boolean matrix (a set larger than this
#: still forms one chunk on its own).
_SPREADS_CHUNK = 1 << 16


class RRSetCollection:
    """A growable collection of RR sets in CSR layout.

    Parameters
    ----------
    n:
        Number of nodes in the underlying graph (bounds the member values).
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise SketchError(f"n must be non-negative, got {n}")
        self.n = int(n)
        self._member_blocks: List[np.ndarray] = []
        self._size_blocks: List[np.ndarray] = []
        self._num_sets = 0
        self._members = _EMPTY
        self._indptr = np.zeros(1, dtype=np.int64)
        self._set_ids: Optional[np.ndarray] = _EMPTY
        self._node_indptr: Optional[np.ndarray] = None
        self._node_sets: Optional[np.ndarray] = None
        self._dirty = False

    # ------------------------------------------------------------- building

    @classmethod
    def from_lists(cls, n: int, rr_sets: Sequence[Iterable[int]]) -> "RRSetCollection":
        """Build a collection from a ``list[list[int]]`` of RR sets."""
        collection = cls(n)
        if not rr_sets:
            return collection
        arrays = [np.asarray(list(s), dtype=np.int64) for s in rr_sets]
        sizes = np.array([a.size for a in arrays], dtype=np.int64)
        indptr = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        members = np.concatenate(arrays) if arrays else _EMPTY
        collection.append(members, indptr)
        return collection

    @classmethod
    def from_csr(
        cls,
        n: int,
        members: np.ndarray,
        indptr: np.ndarray,
        validate: bool = True,
        node_indptr: Optional[np.ndarray] = None,
        node_sets: Optional[np.ndarray] = None,
    ) -> "RRSetCollection":
        """Wrap existing CSR arrays without copying.

        The arrays are adopted as-is — in particular they may be read-only
        ``np.memmap`` views of a persisted index artifact, which is what
        lets a 50k-set index open in milliseconds: nothing is touched until
        the first query.  With ``validate`` (cheap: reads only the ``indptr``
        boundary entries) malformed boundaries raise ``ValueError``.

        ``node_indptr``/``node_sets`` optionally seed the inverted index
        (see :meth:`inverted_index`) with a precomputed copy, e.g. the one
        persisted in an artifact; both must be supplied together.
        """
        collection = cls(n)
        if not isinstance(members, np.ndarray):
            members = np.asarray(members, dtype=np.int64)
        if not isinstance(indptr, np.ndarray):
            indptr = np.asarray(indptr, dtype=np.int64)
        if validate:
            if indptr.ndim != 1 or indptr.size == 0:
                raise SketchError("indptr must be a non-empty 1-d array")
            if int(indptr[0]) != 0 or int(indptr[-1]) != members.size:
                raise SketchError("indptr must start at 0 and end at members.size")
            if np.any(np.diff(indptr) < 0):
                raise SketchError("indptr must be non-decreasing")
        collection._members = members
        collection._indptr = indptr
        collection._num_sets = indptr.size - 1
        collection._set_ids = None  # computed lazily on first coverage query
        collection._dirty = False
        if node_indptr is not None and node_sets is not None:
            if node_indptr.size != n + 1 or node_sets.size != members.size or (
                members.size and int(node_indptr[-1]) != members.size
            ):
                raise SketchError(
                    "inverted index shape disagrees with the CSR arrays"
                )
            collection._node_indptr = node_indptr
            collection._node_sets = node_sets
        return collection

    def append(self, members: np.ndarray, indptr: np.ndarray) -> None:
        """Append a CSR block of RR sets (as produced by the batch sampler)."""
        members = np.asarray(members, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != members.size:
            raise SketchError("indptr must start at 0 and end at members.size")
        sizes = np.diff(indptr)
        if sizes.size == 0:
            return
        self._member_blocks.append(members)
        self._size_blocks.append(sizes)
        self._num_sets += sizes.size
        self._dirty = True

    # -------------------------------------------------------------- queries

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def __len__(self) -> int:
        return self._num_sets

    @property
    def members(self) -> np.ndarray:
        """Flat member array (concatenation of every set's members)."""
        self._consolidate()
        return self._members

    @property
    def indptr(self) -> np.ndarray:
        """Set boundaries: set ``j`` is ``members[indptr[j]:indptr[j+1]]``."""
        self._consolidate()
        return self._indptr

    @property
    def set_ids(self) -> np.ndarray:
        """Set index of every entry of :attr:`members` (computed lazily)."""
        self._consolidate()
        if self._set_ids is None:
            sizes = np.diff(self._indptr)
            self._set_ids = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
        return self._set_ids

    def _consolidate(self) -> None:
        if not self._dirty:
            return
        members = [self._members] + self._member_blocks if self._members.size else (
            self._member_blocks
        )
        sizes_old = np.diff(self._indptr)
        sizes = np.concatenate([sizes_old] + self._size_blocks)
        self._members = np.concatenate(members) if members else _EMPTY
        self._indptr = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=self._indptr[1:])
        self._set_ids = None
        self._node_indptr = None
        self._node_sets = None
        self._member_blocks = []
        self._size_blocks = []
        self._dirty = False

    def inverted_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """The sets containing each node, as a CSR keyed by node.

        Returns ``(node_indptr, node_sets)``: node ``v`` appears in sets
        ``node_sets[node_indptr[v]:node_indptr[v + 1]]``.  This is the
        access structure greedy max coverage walks; building it costs one
        stable argsort of ``members``, so it is cached here and persisted
        inside index artifacts (where a warm ``select(k)`` would otherwise
        pay the argsort on every reopen).  Deterministic given the CSR:
        within a node, set ids appear in ascending order.
        """
        self._consolidate()
        if self._node_indptr is None or self._node_sets is None:
            counts = np.bincount(self._members, minlength=self.n)
            node_indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=node_indptr[1:])
            order = np.argsort(self._members, kind="stable")
            self._node_sets = self.set_ids[order]
            self._node_indptr = node_indptr
        return self._node_indptr, self._node_sets

    def set_members(self, index: int) -> np.ndarray:
        """Members of set ``index`` in discovery order."""
        members, indptr = self.members, self.indptr
        if not 0 <= index < self.num_sets:
            raise SketchIndexError(f"set index {index} out of range 0..{self.num_sets - 1}")
        return members[indptr[index]:indptr[index + 1]]

    def as_lists(self) -> List[List[int]]:
        """The collection as ``list[list[int]]`` (tests and debugging)."""
        return [self.set_members(i).tolist() for i in range(self.num_sets)]

    def coverage_counts(self) -> np.ndarray:
        """Number of sets each node appears in (the initial greedy gains)."""
        return np.bincount(self.members, minlength=self.n)

    def covered_mask(self, seeds: Sequence[int]) -> np.ndarray:
        """Boolean mask over sets: which sets contain at least one seed."""
        mask = np.zeros(self.num_sets, dtype=bool)
        seeds = np.asarray(list(seeds), dtype=np.int64)
        if seeds.size == 0 or self.num_sets == 0:
            return mask
        seed_mask = np.zeros(self.n, dtype=bool)
        seed_mask[seeds] = True
        hits = seed_mask[self.members]
        mask[self.set_ids[hits]] = True
        return mask

    def covered_fraction(self, seeds: Sequence[int]) -> float:
        """Fraction of sets containing at least one seed."""
        if self.num_sets == 0:
            return 0.0
        return float(self.covered_mask(seeds).sum()) / self.num_sets

    def estimated_spread(self, seeds: Sequence[int]) -> float:
        """Sketch estimate of the expected spread of ``seeds``.

        The standard RIS estimator: ``n`` times the fraction of RR sets the
        seed set covers.  Accuracy grows with the number of sets (theta).
        Note this counts the seeds themselves (a root drawn at a seed is
        always covered); the paper's Def. 3 objective excludes seeds, so
        subtract ``len(seeds)`` when comparing against
        :class:`~repro.diffusion.simulation.MonteCarloEngine` estimates.
        """
        return self.covered_fraction(seeds) * self.n

    def estimated_spreads(self, seed_sets: Sequence[Sequence[int]]) -> np.ndarray:
        """Sketch spread estimates for several seed sets in one pass.

        Semantically ``[estimated_spread(s) for s in seed_sets]``, but the
        member array is walked once for the whole batch: every request's
        seed mask is gathered against ``members`` simultaneously and reduced
        per set.  This is the kernel behind the serving layer's request
        coalescing — R concurrent evaluate calls cost one traversal, not R.
        """
        requests = [np.asarray(list(s), dtype=np.int64) for s in seed_sets]
        count = len(requests)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        if self.num_sets == 0 or self.n == 0:
            return np.zeros(count, dtype=np.float64)
        members, indptr = self.members, self.indptr
        seed_mask = np.zeros((count, self.n), dtype=bool)
        for row, seeds in enumerate(requests):
            seed_mask[row, seeds] = True
        if members.size == 0:
            return np.zeros(count, dtype=np.float64)
        # The member array is walked in set-aligned chunks so the transient
        # ``requests x chunk`` gather matrix stays bounded regardless of how
        # many requests a coalesced batch carries.  Within a chunk, reduceat
        # runs over the non-empty sets only: their starts are strictly
        # increasing, always valid, and consecutive starts delimit exactly
        # one set's members (reduceat misbehaves on empty segments — it
        # returns the element *at* the boundary, and errors when the
        # boundary equals the slice size; empty sets are never covered, so
        # they simply don't enter the count).
        covered_counts = np.zeros(count, dtype=np.int64)
        set_start = 0
        while set_start < self.num_sets:
            limit = indptr[set_start] + _SPREADS_CHUNK
            set_end = int(np.searchsorted(indptr, limit, side="right")) - 1
            set_end = min(max(set_end, set_start + 1), self.num_sets)
            lo, hi = indptr[set_start], indptr[set_end]
            sizes = np.diff(indptr[set_start:set_end + 1])
            nonempty = np.flatnonzero(sizes > 0)
            if hi > lo and nonempty.size:
                hits = seed_mask[:, members[lo:hi]]
                starts = indptr[set_start:set_end][nonempty] - lo
                covered = np.logical_or.reduceat(hits, starts, axis=1)
                covered_counts += covered.sum(axis=1)
            set_start = set_end
        return covered_counts / self.num_sets * self.n

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays (pending blocks included)."""
        total = self._members.nbytes + self._indptr.nbytes
        if self._set_ids is not None:
            total += self._set_ids.nbytes
        if self._node_indptr is not None:
            total += self._node_indptr.nbytes
        if self._node_sets is not None:
            total += self._node_sets.nbytes
        total += sum(block.nbytes for block in self._member_blocks)
        total += sum(block.nbytes for block in self._size_blocks)
        return int(total)

    def __eq__(self, other: object) -> bool:
        """Content equality: same ``n`` and bit-identical CSR arrays.

        Used by the persistence tests to assert that a saved-and-reloaded
        (or incrementally grown) index equals a freshly built one.
        """
        if not isinstance(other, RRSetCollection):
            return NotImplemented
        return (
            self.n == other.n
            and self.num_sets == other.num_sets
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.members, other.members)
        )

    def __repr__(self) -> str:
        return (
            f"<RRSetCollection with {self.num_sets} sets over {self.n} nodes, "
            f"{self.members.size} members>"
        )
