"""Vectorized reverse-reachable (RR) sketch subsystem for the RIS family.

The RIS-based selectors (TIM+, IMM) spend almost all of their time drawing
RR sets and covering them.  This package provides the batched building
blocks they run on:

* :class:`~repro.sketches.sampler.BatchRRSampler` — advances whole blocks of
  reverse BFS frontiers (IC/WC) or live-edge walks (LT) per vectorized pass
  over the in-CSR arrays, mirroring the forward batch kernels of
  :mod:`repro.diffusion.batch`.
* :class:`~repro.sketches.collection.RRSetCollection` — a compact CSR-backed
  store of RR sets (flat ``members``/``indptr`` int64 arrays) that grows
  incrementally, plus the sketch-based spread oracle
  :meth:`~repro.sketches.collection.RRSetCollection.estimated_spread`.
* :func:`~repro.sketches.coverage.greedy_max_coverage` — heap/counter-based
  lazy-greedy maximum coverage with ``np.bincount`` node-degree counters and
  incremental decrement on cover.
"""

from repro.sketches.collection import RRSetCollection
from repro.sketches.coverage import greedy_max_coverage, pad_with_unselected
from repro.sketches.sampler import BatchRRSampler, in_edge_probabilities

__all__ = [
    "BatchRRSampler",
    "RRSetCollection",
    "greedy_max_coverage",
    "in_edge_probabilities",
    "pad_with_unselected",
]
