"""Batched reverse-reachable (RR) set sampling.

An RR set for a uniformly random root ``v`` is the set of nodes that reach
``v`` in a randomly sampled possible world.  The scalar samplers in
:mod:`repro.algorithms.tim` walk one RR set at a time with Python-level
frontier loops; :class:`BatchRRSampler` advances whole blocks of RR sets per
vectorized pass over the in-CSR arrays, in the same kernel style as the
forward cascade kernels of :mod:`repro.diffusion.batch`:

* **IC/WC** — a block of reverse BFS frontiers.  Each round flattens every
  frontier node's in-edge slice with the ``np.repeat``-over-``indptr`` trick,
  draws one uniform per edge, and admits successful, still-unvisited sources
  with a sort-free first-wins scatter dedup.
* **LT** — the live-edge single-in-edge walk.  Every active walk consumes one
  uniform per step; the live in-edge is resolved with a single global
  ``searchsorted`` against a band-shifted per-segment cumulative-weight
  array (the same trick as ``_sample_live_parent_matrix``).

**Block-size independence.**  The RIS selectors must return identical seed
sets for a fixed engine seed regardless of how the sampling work is chunked
into blocks.  Per-block draws from a shared ``numpy`` generator would break
that (splitting a block changes the stream layout), so the sampler consumes
exactly *one* 63-bit token per RR set from the engine generator — bounded
``Generator.integers`` fills are split-invariant, i.e. drawing ``(10, 10)``
tokens equals drawing ``(20,)`` — and derives everything else from the token
with a counter-based generator: the root is ``token % n`` and uniform number
``t`` of the set is a SplitMix64 hash of ``(token, t)``.  Each set's draw
counter advances only with its own edges, so the sampled worlds depend only
on the token sequence, never on which block a set landed in.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.telemetry.registry import default_registry
from repro.telemetry.tracing import span

SUPPORTED_MODELS = ("ic", "wc", "lt")

_EMPTY = np.empty(0, dtype=np.int64)

# SplitMix64 constants (Steele, Lea and Flood 2014) — the standard 64-bit
# finalizer used as a counter-based generator over (stream, counter) pairs.
_MIX_STEP = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_INV_2_53 = float(2.0 ** -53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array.

    Mutates and returns ``x`` (callers pass a fresh temporary); the
    arithmetic wraps modulo 2**64 by design.
    """
    x ^= x >> np.uint64(30)
    x *= _MIX_A
    x ^= x >> np.uint64(27)
    x *= _MIX_B
    x ^= x >> np.uint64(31)
    return x


def _counter_hash(streams: np.ndarray, counters) -> np.ndarray:
    """53-bit hash values for per-set stream keys at per-set draw counters."""
    counters = np.atleast_1d(np.asarray(counters))
    if counters.dtype != np.uint64:
        # int64 counters are always non-negative here; reinterpret in place.
        counters = counters.view(np.uint64) if counters.dtype == np.int64 else (
            counters.astype(np.uint64)
        )
    mixed = _mix64(streams + counters * _MIX_STEP)
    mixed >>= np.uint64(11)
    return mixed


def _counter_uniforms(streams: np.ndarray, counters) -> np.ndarray:
    """Uniforms in [0, 1) for per-set stream keys at per-set draw counters."""
    return _counter_hash(streams, counters).astype(np.float64) * _INV_2_53


def _integer_thresholds(probabilities: np.ndarray) -> np.ndarray:
    """Per-edge 53-bit acceptance thresholds.

    For an integer hash ``h`` uniform on ``[0, 2**53)``, ``h < ceil(p * 2**53)``
    is exactly equivalent to ``h * 2**-53 < p`` (and ``p = 1`` always
    accepts), so the IC kernel can compare hashes directly and skip the
    float conversion of the uniform.
    """
    return np.ceil(probabilities * float(1 << 53)).astype(np.uint64)


def expand_csr_positions(indptr: np.ndarray, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Global positions of every CSR entry of ``nodes``, slices concatenated.

    Returns ``(positions, degrees)``; the ``np.repeat``-over-``indptr`` trick
    shared by the sampler's frontier expansion and the coverage decrement.
    """
    degrees = indptr[nodes + 1] - indptr[nodes]
    total = int(degrees.sum())
    if total == 0:
        return _EMPTY, degrees
    positions = np.arange(total) + np.repeat(
        indptr[nodes] - np.cumsum(degrees) + degrees, degrees
    )
    return positions, degrees


def _dedup_first(keys: np.ndarray) -> np.ndarray:
    """Ascending indices of the first occurrence of each distinct key.

    Sort-based rather than the scatter dedup of ``repro.diffusion.batch``:
    RR keys range over ``block * n``, and scattering into an array that size
    is TLB-bound, while the per-round key counts here are small enough that
    ``np.unique`` stays in cache.
    """
    return np.sort(np.unique(keys, return_index=True)[1])


def in_edge_probabilities(graph: CompiledGraph, model: str) -> np.ndarray:
    """In-edge aligned traversal probabilities for an RIS model.

    ``ic`` uses the annotated influence probabilities, ``lt`` the annotated
    LT weights when present; ``wc`` (and ``lt`` without annotations) fall
    back to ``1 / in_degree(target)``.
    """
    if model not in SUPPORTED_MODELS:
        raise ConfigurationError(
            f"model must be one of {SUPPORTED_MODELS}, got {model!r}"
        )
    if model == "ic":
        return graph.in_probability
    if model == "lt" and np.any(graph.in_weight > 0):
        return graph.in_weight
    in_degrees = np.diff(graph.in_indptr).astype(np.float64)
    safe = np.where(in_degrees > 0, in_degrees, 1.0)
    return np.repeat(1.0 / safe, np.diff(graph.in_indptr))


#: Per-worker-process sampler installed by :func:`sampler_worker_init`.
_WORKER_STATE: dict = {}


def sampler_worker_init(graph, model: str) -> None:
    """Build the worker-side sampler once per supervised worker process.

    ``graph`` is either a :class:`~repro.graphs.digraph.CompiledGraph` or a
    picklable handle exposing ``load_compiled()`` (the runtime's mmap-backed
    :class:`~repro.runtime.sharedgraph.SharedGraph`), so workers on spawn
    platforms map the CSR arrays instead of copying them.
    """
    loader = getattr(graph, "load_compiled", None)
    if loader is not None:
        graph = loader()
    _WORKER_STATE["sampler"] = BatchRRSampler(graph, model)


def sampler_worker_run(tokens: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Worker-side block task: sample the RR sets of one token block."""
    return _WORKER_STATE["sampler"].sample_tokens(tokens)


class BatchRRSampler:
    """Draws blocks of RR sets on a compiled graph under ``ic``/``wc``/``lt``.

    Parameters
    ----------
    graph:
        The compiled graph whose in-CSR arrays are traversed.
    model:
        One of ``"ic"``, ``"wc"`` or ``"lt"``.
    probabilities:
        Optional in-edge aligned traversal probabilities; computed with
        :func:`in_edge_probabilities` when omitted.
    """

    def __init__(
        self,
        graph: CompiledGraph,
        model: str,
        probabilities: np.ndarray = None,
    ) -> None:
        if model not in SUPPORTED_MODELS:
            raise ConfigurationError(
                f"model must be one of {SUPPORTED_MODELS}, got {model!r}"
            )
        self.graph = graph
        self.model = model
        self.n = graph.number_of_nodes
        if probabilities is None:
            probabilities = in_edge_probabilities(graph, model)
        self.probabilities = np.asarray(probabilities, dtype=np.float64)
        self._in_degrees = np.diff(graph.in_indptr)
        # Persistent visited buffer: allocated once for the largest block
        # seen and wiped incrementally (only the keys a block touched),
        # because re-allocating a ``block * n`` array per block costs more
        # in page faults than the sampling itself on small-RR-set graphs.
        # Keys are node-major (``node * block + set``) so the hub nodes that
        # dominate reverse traversals share pages.
        self._visited = np.zeros(0, dtype=bool)
        if model == "lt":
            self._prepare_live_edge_arrays()
        else:
            self._thresholds = _integer_thresholds(self.probabilities)
            # Pre-multiplied per-edge counter offsets: one gather per round
            # instead of a gather plus a 64-bit multiply.
            self._edge_step = (
                np.arange(self.probabilities.size, dtype=np.uint64) * _MIX_STEP
            )

    def _prepare_live_edge_arrays(self) -> None:
        """Band-shifted per-segment cumulative weights for the LT walk."""
        n = self.n
        weights = self.probabilities
        in_degrees = self._in_degrees
        totals = np.zeros(n, dtype=np.float64)
        if weights.size:
            cumulative = np.cumsum(weights)
            starts = self.graph.in_indptr[:-1]
            prefix = cumulative[starts] - weights[starts]
            within = cumulative - np.repeat(prefix, in_degrees)
            positive = np.flatnonzero(in_degrees > 0)
            totals[positive] = within[self.graph.in_indptr[1:][positive] - 1]
            band = float(max(2.0, np.ceil(within.max()) + 1.0))
            segment_of_edge = np.repeat(np.arange(n), in_degrees)
            shifted = within + band * segment_of_edge
        else:
            band = 2.0
            shifted = np.empty(0, dtype=np.float64)
        self._totals = totals
        self._band = band
        self._shifted = shifted

    def _block_visited(self, count: int) -> np.ndarray:
        """Reusable visited buffer covering ``count`` sets.

        A larger block may arrive after a smaller one; the node-major key
        stride is the *buffer* capacity, not the block size, so existing
        clean state stays valid when only ``count`` grows.
        """
        if self._visited.size < count * self.n:
            self._visited = np.zeros(count * self.n, dtype=bool)
        return self._visited

    # ------------------------------------------------------------- sampling

    @staticmethod
    def draw_tokens(rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` per-set tokens from the engine generator.

        This is the *only* consumption the sampler makes of ``rng`` — one
        63-bit token per RR set — and the serving layer's deterministic
        growth replays it (:meth:`skip_tokens`), so every token draw must go
        through here: changing the bounds, dtype or fill semantics anywhere
        else would silently desynchronize grown indexes from fresh builds.
        """
        return rng.integers(0, np.iinfo(np.int64).max, size=count, dtype=np.int64)

    @classmethod
    def skip_tokens(cls, rng: np.random.Generator, count: int) -> None:
        """Advance ``rng`` past ``count`` RR-set tokens without sampling.

        Split-invariance of bounded ``integers`` fills makes one draw of
        ``count`` equal to the per-block draws an original build issued.
        """
        if count > 0:
            cls.draw_tokens(rng, count)

    def sample(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``count`` RR sets; return ``(members, indptr, widths)``.

        ``members``/``indptr`` form a CSR over the sets (members in
        discovery order, root first); ``widths[j]`` is the number of in-edges
        examined while growing set ``j`` (the ``EPT`` width used by TIM's
        KPT estimation).
        """
        count = int(count)
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if count == 0 or self.n == 0:
            return _EMPTY.copy(), np.zeros(count + 1, dtype=np.int64), _EMPTY.copy()
        return self.sample_tokens(self.draw_tokens(rng, count))

    def sample_tokens(
        self, tokens: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample one RR set per entry of ``tokens`` (see :meth:`sample`).

        This is the replay primitive behind the supervised runtime: a
        token fully determines its RR set (root and every uniform), so any
        process sampling the same token block — first try, crash replay or
        in-process fallback — produces bit-for-bit identical CSR arrays.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size == 0 or self.n == 0:
            return (
                _EMPTY.copy(),
                np.zeros(tokens.size + 1, dtype=np.int64),
                _EMPTY.copy(),
            )
        roots = (tokens % self.n).astype(np.int64)
        streams = _mix64(tokens.astype(np.uint64))
        if self.model == "lt":
            return self._sample_lt_block(roots, streams)
        return self._sample_ic_block(roots, streams)

    def sample_into(
        self,
        rng: np.random.Generator,
        collection,
        target: int,
        block_size: int,
    ) -> None:
        """Sample RR sets block-wise until ``collection`` holds ``target``.

        The single grow loop shared by the selectors, the sketch spread
        oracle and the benchmark, so block chunking behaves identically
        everywhere.
        """
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        registry = default_registry()
        sets_total = blocks_total = None
        if registry is not None:
            sets_total = registry.counter(
                "repro_sketch_rr_sets_total", "RR sets drawn by sample_into."
            )
            blocks_total = registry.counter(
                "repro_sketch_rr_blocks_total", "Sampling blocks run by sample_into."
            )
        with span(
            "rr_sample",
            model=self.model,
            start=int(collection.num_sets),
            target=int(target),
        ):
            while collection.num_sets < target:
                block = min(block_size, target - collection.num_sets)
                members, indptr, _ = self.sample(rng, block)
                collection.append(members, indptr)
                if sets_total is not None:
                    sets_total.inc(block)
                    blocks_total.inc()

    def sample_roots(
        self, rng: np.random.Generator, roots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one RR set per entry of ``roots`` (mainly for tests)."""
        roots = np.asarray(roots, dtype=np.int64)
        tokens = self.draw_tokens(rng, roots.size)
        streams = _mix64(tokens.astype(np.uint64))
        if self.model == "lt":
            return self._sample_lt_block(roots, streams)
        return self._sample_ic_block(roots, streams)

    # ------------------------------------------------------------ IC family

    def _sample_ic_block(
        self, roots: np.ndarray, streams: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        graph = self.graph
        n = self.n
        count = roots.size
        indptr = graph.in_indptr
        indices = graph.in_indices
        thresholds = self._thresholds

        visited = self._block_visited(count)
        stride = visited.size // n

        owner_chunks = [np.arange(count, dtype=np.int64)]
        node_chunks = [roots]
        frontier_owner = owner_chunks[0]
        frontier_node = roots
        visited[roots * stride + frontier_owner] = True

        while frontier_owner.size:
            positions, degrees = expand_csr_positions(indptr, frontier_node)
            if positions.size == 0:
                break
            edge_owner = np.repeat(frontier_owner, degrees)

            # The draw for a (set, edge) pair is keyed by the set's stream
            # and the *global edge id* — a set examines each in-edge at most
            # once (nodes enter its frontier once), so edge ids never repeat
            # within a set and the draws are independent of both the round
            # structure and the block composition.  The comparison runs in
            # the integer hash domain (see _integer_thresholds).
            hashes = _mix64(streams[edge_owner] + self._edge_step[positions])
            hashes >>= np.uint64(11)
            hit = np.flatnonzero(hashes < thresholds[positions])
            if hit.size == 0:
                break
            sources = indices[positions[hit]]
            keys = sources * stride + edge_owner[hit]
            fresh = np.flatnonzero(~visited[keys])
            if fresh.size == 0:
                break
            winners = fresh[_dedup_first(keys[fresh])]
            visited[keys[winners]] = True
            frontier_owner = edge_owner[hit[winners]]
            frontier_node = sources[winners]
            owner_chunks.append(frontier_owner)
            node_chunks.append(frontier_node)

        return self._finish_block(owner_chunks, node_chunks, count)

    # ------------------------------------------------------------ LT family

    def _sample_lt_block(
        self, roots: np.ndarray, streams: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        graph = self.graph
        n = self.n
        count = roots.size
        in_degrees = self._in_degrees

        visited = self._block_visited(count)
        stride = visited.size // n
        owner_chunks = [np.arange(count, dtype=np.int64)]
        node_chunks = [roots]
        visited[roots * stride + owner_chunks[0]] = True

        current = roots.copy()
        alive = np.arange(count, dtype=np.int64)
        step = np.uint64(0)
        while alive.size:
            nodes = current[alive]
            has_in = in_degrees[nodes] > 0
            alive = alive[has_in]
            nodes = nodes[has_in]
            if alive.size == 0:
                break

            # One uniform per walk per step; a walk's step index is its own
            # age, so the draws are independent of block composition.
            draws = _counter_uniforms(streams[alive], step)
            step += np.uint64(1)
            live = draws < self._totals[nodes]
            alive = alive[live]
            nodes = nodes[live]
            draws = draws[live]
            if alive.size == 0:
                break

            queries = draws + self._band * nodes
            edge_positions = np.searchsorted(self._shifted, queries, side="right")
            sources = graph.in_indices[edge_positions]
            keys = sources * stride + alive
            fresh = ~visited[keys]
            alive = alive[fresh]
            sources = sources[fresh]
            if alive.size == 0:
                break
            visited[keys[fresh]] = True
            owner_chunks.append(alive)
            node_chunks.append(sources)
            current[alive] = sources

        return self._finish_block(owner_chunks, node_chunks, count)

    def _finish_block(
        self,
        owner_chunks: list,
        node_chunks: list,
        count: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Assemble the per-set CSR and wipe the visited keys for reuse.

        The stable sort preserves each set's discovery order, which is what
        makes the assembled arrays independent of how sets were blocked.
        Widths fall out of the membership: every member enters its set's
        frontier (or walk) exactly once and is expanded exactly once, so the
        edges a set examined are the summed in-degrees of its members.
        """
        owners = np.concatenate(owner_chunks)
        nodes = np.concatenate(node_chunks)
        stride = self._visited.size // self.n
        self._visited[nodes * stride + owners] = False
        order = np.argsort(owners, kind="stable")
        members = nodes[order]
        sizes = np.bincount(owners, minlength=count)
        indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        widths = np.bincount(
            owners, weights=self._in_degrees[nodes], minlength=count
        ).astype(np.int64)
        return members.astype(np.int64, copy=False), indptr, widths
