"""Lazy-greedy maximum coverage over an RR-set collection.

The old TIM+/IMM cover rescanned every candidate node against a Python
``dict[int, set[int]]`` each round — O(k · n · |sets|).  This implementation
keeps a per-node *gain* counter (number of still-uncovered sets containing
the node, initialised with one ``np.bincount``), pops candidates from a
max-heap with the classic lazy re-check, and on every selection decrements
the counters of exactly the nodes that co-occur in the newly covered sets
(one CSR gather plus one ``np.bincount`` per round).  Total work is
O(|members| + k log n) instead of a full rescan per seed.

Ties are broken towards the smaller node index, which keeps the cover — and
therefore the TIM+/IMM seed sets — deterministic and independent of the
sampling block size.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sketches.collection import RRSetCollection
from repro.sketches.sampler import expand_csr_positions


def greedy_max_coverage(
    collection: RRSetCollection, budget: int
) -> Tuple[List[int], float]:
    """Greedily pick up to ``budget`` nodes maximising RR-set coverage.

    Returns ``(seeds, covered_fraction)``.  Fewer than ``budget`` seeds are
    returned when no remaining node covers any uncovered set (use
    :func:`pad_with_unselected` to fill up a fixed-size seed set).
    """
    if budget < 0:
        raise ConfigurationError(f"budget must be non-negative, got {budget}")
    n = collection.n
    num_sets = collection.num_sets
    if num_sets == 0 or budget == 0:
        return [], 0.0

    members = collection.members
    indptr = collection.indptr

    # Inverted index: the sets containing each node, as a CSR keyed by node.
    # Cached on the collection (and persisted inside index artifacts), so a
    # warm select over a reopened artifact skips the argsort entirely.
    node_indptr, node_sets = collection.inverted_index()
    gain = np.diff(node_indptr).astype(np.int64, copy=False)

    covered = np.zeros(num_sets, dtype=bool)
    covered_count = 0
    selected: List[int] = []
    selected_mask = np.zeros(n, dtype=bool)

    candidates = np.flatnonzero(gain)
    heap = list(zip((-gain[candidates]).tolist(), candidates.tolist()))
    heapq.heapify(heap)

    while len(selected) < budget and heap:
        negative_gain, node = heapq.heappop(heap)
        if selected_mask[node]:
            continue
        current = int(gain[node])
        if current <= 0:
            continue
        if -negative_gain != current:
            # Stale entry: re-insert with the up-to-date gain (lazy greedy).
            heapq.heappush(heap, (-current, node))
            continue

        selected.append(node)
        selected_mask[node] = True
        containing = node_sets[node_indptr[node]:node_indptr[node + 1]]
        newly = containing[~covered[containing]]
        covered[newly] = True
        covered_count += newly.size

        # Decrement the gain of every member of the newly covered sets.
        positions, _ = expand_csr_positions(indptr, newly)
        if positions.size:
            gain -= np.bincount(members[positions], minlength=n)

    return selected, covered_count / num_sets


def pad_with_unselected(n: int, seeds: Sequence[int], budget: int) -> List[int]:
    """Extend ``seeds`` to exactly ``budget`` nodes with unused indices.

    Mirrors the historical TIM+ behaviour when fewer distinct nodes appear
    in the RR sets than the budget requires: fill with the smallest node
    indices not yet selected.
    """
    seeds = [int(s) for s in seeds]
    if len(seeds) >= budget:
        return seeds[:budget]
    chosen = set(seeds)
    for node in range(n):
        if len(seeds) >= budget:
            break
        if node not in chosen:
            seeds.append(node)
            chosen.add(node)
    return seeds
