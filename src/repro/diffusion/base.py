"""Diffusion-model interface and the outcome of a single cascade.

A :class:`DiffusionModel` runs one stochastic cascade on a
:class:`~repro.graphs.digraph.CompiledGraph` from a set of seed node indices
and returns a :class:`DiffusionOutcome`.  Spread, opinion spread and effective
opinion spread (Defs. 3, 6 and 7 in the paper) are all derived from the
outcome, so a single simulation serves every objective.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class DiffusionOutcome:
    """Result of a single simulated cascade.

    Attributes
    ----------
    seeds:
        The seed node indices the cascade started from.
    activated:
        Every activated node index, seeds included, in activation order.
    final_opinions:
        Mapping from activated node index to its final opinion ``o'``.
        Opinion-oblivious models report the node's initial opinion (or ``0``
        when the graph carries no annotation), which makes the opinion-spread
        of an IC/LT cascade well defined — that is exactly how the paper
        evaluates "IC" curves in Figs. 2 and 5.
    rounds:
        Number of synchronous diffusion rounds until quiescence.
    """

    seeds: tuple[int, ...]
    activated: list[int] = field(default_factory=list)
    final_opinions: Dict[int, float] = field(default_factory=dict)
    rounds: int = 0

    @property
    def seed_set(self) -> frozenset[int]:
        return frozenset(self.seeds)

    def spread(self) -> float:
        """Number of activated nodes excluding the seeds (Def. 3)."""
        return float(len(self.activated) - len(self.seed_set & set(self.activated)))

    def opinion_spread(self) -> float:
        """Sum of final opinions of activated non-seed nodes (Def. 6)."""
        seed_set = self.seed_set
        return float(
            sum(o for node, o in self.final_opinions.items() if node not in seed_set)
        )

    def effective_opinion_spread(self, penalty: float = 1.0) -> float:
        """Positive opinion mass minus ``penalty`` times negative mass (Def. 7)."""
        seed_set = self.seed_set
        positive = 0.0
        negative = 0.0
        for node, opinion in self.final_opinions.items():
            if node in seed_set:
                continue
            if opinion > 0:
                positive += opinion
            elif opinion < 0:
                negative += -opinion
        return positive - penalty * negative


class DiffusionModel(abc.ABC):
    """Base class for every diffusion model.

    Subclasses implement :meth:`simulate`, which must be a pure function of
    ``(graph, seeds, rng)`` — all randomness flows through the supplied
    generator so Monte-Carlo estimation stays reproducible.
    """

    #: Short identifier used by the model registry and the CLI.
    name: str = "base"

    #: Whether the model produces opinion-aware final opinions.
    opinion_aware: bool = False

    @abc.abstractmethod
    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        """Run one cascade from ``seeds`` and return its outcome."""

    def simulate_once(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        seed: RandomState = None,
    ) -> DiffusionOutcome:
        """Convenience wrapper accepting any :data:`RandomState` spelling."""
        return self.simulate(graph, seeds, ensure_rng(seed))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def validate_seed_indices(graph: CompiledGraph, seeds: Sequence[int]) -> tuple[int, ...]:
    """Validate and normalise seed indices for a compiled graph."""
    n = graph.number_of_nodes
    unique: list[int] = []
    seen: set[int] = set()
    for seed in seeds:
        index = int(seed)
        if not 0 <= index < n:
            raise ValueError(f"seed index {index} is outside 0..{n - 1}")
        if index not in seen:
            seen.add(index)
            unique.append(index)
    return tuple(unique)
