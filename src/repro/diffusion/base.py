"""Diffusion-model interface and the outcomes of simulated cascades.

A :class:`DiffusionModel` runs one stochastic cascade on a
:class:`~repro.graphs.digraph.CompiledGraph` from a set of seed node indices
and returns a :class:`DiffusionOutcome`.  Spread, opinion spread and effective
opinion spread (Defs. 3, 6 and 7 in the paper) are all derived from the
outcome, so a single simulation serves every objective.

Models may additionally implement :meth:`DiffusionModel.simulate_batch`,
which advances a whole batch of independent cascades simultaneously and
returns a :class:`BatchOutcome` — dense ``(count, n)`` state matrices whose
objective reductions replace ``count`` per-outcome method calls with three
matrix reductions.  The base class provides a loop-over-:meth:`simulate`
fallback so third-party models keep working unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class DiffusionOutcome:
    """Result of a single simulated cascade.

    Attributes
    ----------
    seeds:
        The seed node indices the cascade started from.
    activated:
        Every activated node index, seeds included, in activation order.
    final_opinions:
        Mapping from activated node index to its final opinion ``o'``.
        Opinion-oblivious models report the node's initial opinion (or ``0``
        when the graph carries no annotation), which makes the opinion-spread
        of an IC/LT cascade well defined — that is exactly how the paper
        evaluates "IC" curves in Figs. 2 and 5.
    rounds:
        Number of synchronous diffusion rounds until quiescence.
    """

    seeds: tuple[int, ...]
    activated: list[int] = field(default_factory=list)
    final_opinions: Dict[int, float] = field(default_factory=dict)
    rounds: int = 0

    @property
    def seed_set(self) -> frozenset[int]:
        return frozenset(self.seeds)

    def spread(self) -> float:
        """Number of activated nodes excluding the seeds (Def. 3)."""
        return float(len(self.activated) - len(self.seed_set & set(self.activated)))

    def opinion_spread(self) -> float:
        """Sum of final opinions of activated non-seed nodes (Def. 6)."""
        seed_set = self.seed_set
        return float(
            sum(o for node, o in self.final_opinions.items() if node not in seed_set)
        )

    def effective_opinion_spread(self, penalty: float = 1.0) -> float:
        """Positive opinion mass minus ``penalty`` times negative mass (Def. 7)."""
        seed_set = self.seed_set
        positive = 0.0
        negative = 0.0
        for node, opinion in self.final_opinions.items():
            if node in seed_set:
                continue
            if opinion > 0:
                positive += opinion
            elif opinion < 0:
                negative += -opinion
        return positive - penalty * negative


@dataclass
class BatchOutcome:
    """Result of ``count`` simulated cascades advanced as one batch.

    Attributes
    ----------
    seeds:
        The (validated, de-duplicated) seed node indices shared by every
        cascade in the batch.
    active:
        ``(count, n)`` boolean matrix; ``active[i, v]`` is True when cascade
        ``i`` activated node ``v`` (seeds included).
    opinions:
        ``(count, n)`` float matrix of final opinions ``o'``; only entries
        where ``active`` is True are meaningful (inactive entries are zero).
    rounds:
        ``(count,)`` number of synchronous diffusion rounds per cascade.
    """

    seeds: tuple[int, ...]
    active: np.ndarray
    opinions: np.ndarray
    rounds: np.ndarray

    @property
    def count(self) -> int:
        return int(self.active.shape[0])

    @property
    def number_of_nodes(self) -> int:
        return int(self.active.shape[1])

    def _non_seed_active(self) -> np.ndarray:
        mask = self.active.copy()
        if self.seeds:
            mask[:, list(self.seeds)] = False
        return mask

    def spreads(self) -> np.ndarray:
        """Per-cascade spread — activated nodes excluding seeds (Def. 3)."""
        return self._non_seed_active().sum(axis=1).astype(np.float64)

    def opinion_spreads(self) -> np.ndarray:
        """Per-cascade sum of final opinions of non-seed activations (Def. 6)."""
        return np.where(self._non_seed_active(), self.opinions, 0.0).sum(axis=1)

    def effective_opinion_spreads(self, penalty: float = 1.0) -> np.ndarray:
        """Per-cascade positive mass minus ``penalty`` times negative (Def. 7)."""
        masked = np.where(self._non_seed_active(), self.opinions, 0.0)
        positive = np.clip(masked, 0.0, None).sum(axis=1)
        negative = np.clip(-masked, 0.0, None).sum(axis=1)
        return positive - penalty * negative

    def objectives(self, penalty: float = 1.0) -> np.ndarray:
        """All three objectives as one ``(3, count)`` array.

        Row order matches the Monte-Carlo engine: spread, opinion spread,
        effective opinion spread.  Exploits the invariant that inactive
        entries of ``opinions`` are zero: whole-matrix sums followed by a
        small seed-column correction replace per-cascade masking, keeping the
        reduction at three passes over the state matrices.
        """
        spreads = self.active.sum(axis=1).astype(np.float64)
        totals = self.opinions.sum(axis=1)
        positive = np.maximum(self.opinions, 0.0).sum(axis=1)
        if self.seeds:
            seed_list = list(self.seeds)
            spreads -= self.active[:, seed_list].sum(axis=1)
            seed_opinions = self.opinions[:, seed_list]
            totals -= seed_opinions.sum(axis=1)
            positive -= np.maximum(seed_opinions, 0.0).sum(axis=1)
        negative = positive - totals
        return np.stack([spreads, totals, positive - penalty * negative])

    def outcome(self, index: int) -> DiffusionOutcome:
        """Materialise cascade ``index`` as a scalar :class:`DiffusionOutcome`.

        Activation *order* is not tracked in batch mode, so ``activated``
        lists seeds first and the remaining nodes in index order.
        """
        activated_nodes = np.flatnonzero(self.active[index])
        seed_set = set(self.seeds)
        activated = list(self.seeds) + [
            int(v) for v in activated_nodes if int(v) not in seed_set
        ]
        return DiffusionOutcome(
            seeds=self.seeds,
            activated=activated,
            final_opinions={v: float(self.opinions[index, v]) for v in activated},
            rounds=int(self.rounds[index]),
        )


class DiffusionModel(abc.ABC):
    """Base class for every diffusion model.

    Subclasses implement :meth:`simulate`, which must be a pure function of
    ``(graph, seeds, rng)`` — all randomness flows through the supplied
    generator so Monte-Carlo estimation stays reproducible.
    """

    #: Short identifier used by the model registry and the CLI.
    name: str = "base"

    #: Whether the model produces opinion-aware final opinions.
    opinion_aware: bool = False

    @abc.abstractmethod
    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        """Run one cascade from ``seeds`` and return its outcome."""

    def simulate_once(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        seed: RandomState = None,
    ) -> DiffusionOutcome:
        """Convenience wrapper accepting any :data:`RandomState` spelling."""
        return self.simulate(graph, seeds, ensure_rng(seed))

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        """Run ``count`` independent cascades and return their joint outcome.

        The base implementation loops over :meth:`simulate`, so any model
        that only defines the scalar entry point automatically supports the
        batch API.  Native models override this with an array-parallel kernel
        that advances every cascade per diffusion round in bulk numpy
        operations (see :mod:`repro.diffusion.batch`).
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        validated = validate_seed_indices(graph, seeds)
        n = graph.number_of_nodes
        active = np.zeros((count, n), dtype=bool)
        opinions = np.zeros((count, n), dtype=np.float64)
        rounds = np.zeros(count, dtype=np.int64)
        for i in range(count):
            outcome = self.simulate(graph, list(validated), rng)
            active[i, outcome.activated] = True
            for node, opinion in outcome.final_opinions.items():
                opinions[i, node] = opinion
            rounds[i] = outcome.rounds
        return BatchOutcome(
            seeds=validated, active=active, opinions=opinions, rounds=rounds
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def validate_seed_indices(graph: CompiledGraph, seeds: Sequence[int]) -> tuple[int, ...]:
    """Validate and normalise seed indices for a compiled graph."""
    n = graph.number_of_nodes
    unique: list[int] = []
    seen: set[int] = set()
    for seed in seeds:
        index = int(seed)
        if not 0 <= index < n:
            raise ConfigurationError(f"seed index {index} is outside 0..{n - 1}")
        if index not in seen:
            seen.add(index)
            unique.append(index)
    return tuple(unique)
