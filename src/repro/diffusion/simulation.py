"""Monte-Carlo estimation of spread, opinion spread and effective opinion spread.

The paper reports every quality number as an average over 10K Monte-Carlo
simulations.  :class:`MonteCarloEngine` provides that estimation loop with a
configurable number of simulations, deterministic seeding, and an LRU outcome
cache keyed by seed set so greedy algorithms that re-evaluate the same set do
not pay for it twice.

Simulations are executed through :meth:`DiffusionModel.simulate_batch` in
fixed-size blocks of cascades: each block advances hundreds of cascades per
vectorized numpy pass and all three objectives are computed with matrix
reductions over the block's :class:`~repro.diffusion.base.BatchOutcome`.
Block seeds are derived from the engine seed *before* any work is dispatched,
so the estimate for a given engine seed is identical regardless of how many
worker processes the blocks are spread across.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.diffusion.registry import get_model
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph, DiGraph, Node
from repro.telemetry.registry import default_registry
from repro.telemetry.tracing import span
from repro.utils.rng import RandomState, ensure_rng

_LOGGER = logging.getLogger(__name__)

#: Upper bound on cascades advanced per vectorized batch.  Bounds the
#: ``(count, n)`` state matrices — a kernel holds a handful of them (boolean
#: activation plus, for LT/opinion-aware kernels, float64 opinion, threshold
#: and accumulator matrices and an int32 dedup scratch), so a 512-cascade
#: block costs roughly ``25 * n`` bytes times 512 in the worst case.  Lower
#: it for very large graphs; raising it rarely helps (narrower blocks are
#: cache-friendlier).
DEFAULT_BATCH_SIZE = 512

#: Minimum number of blocks an estimate is split into (when ``simulations``
#: allows).  The block plan is a pure function of ``simulations`` and
#: ``batch_size`` — never of ``workers`` — so estimates are reproducible
#: across worker counts while still giving a process pool at least this many
#: independent tasks to spread.
MIN_BLOCKS = 8


def _simulate_batch(
    model: DiffusionModel,
    graph: CompiledGraph,
    seeds: tuple,
    penalty: float,
    batch_seed: int,
    count: int,
) -> np.ndarray:
    """Run one block of ``count`` cascades; returns a ``(3, count)`` array.

    Module-level so it can be pickled and dispatched to worker processes; the
    paper runs its 10K Monte-Carlo simulations in parallel on 20 cores
    (Sec. 4, footnote 9) and this is the equivalent hook.
    """
    rng = ensure_rng(batch_seed)
    outcome = model.simulate_batch(graph, list(seeds), rng, count)
    return outcome.objectives(penalty)


#: Per-worker-process state installed by :func:`_init_pool_worker`.
_POOL_STATE: dict = {}


def _init_pool_worker(model: DiffusionModel, graph: CompiledGraph) -> None:
    """Stash the engine's model and graph in the worker process once.

    Shipping the (potentially large) compiled graph at pool creation instead
    of with every task keeps per-``estimate`` dispatch overhead to a few
    scalars, which matters on the greedy hot path where ``estimate`` runs
    thousands of times against one pool.
    """
    _POOL_STATE["model"] = model
    _POOL_STATE["graph"] = graph


def _simulate_batch_pooled(payload: tuple) -> np.ndarray:
    """Worker-side block runner using the state set by :func:`_init_pool_worker`.

    ``payload`` is ``(seeds, penalty, batch_seed, count)``; a block's result
    is a pure function of it (plus the pool-installed model and graph), which
    is the replay invariant the supervised pool relies on to re-execute the
    block bit-identically after a worker crash.
    """
    seeds, penalty, batch_seed, count = payload
    return _simulate_batch(
        _POOL_STATE["model"], _POOL_STATE["graph"], seeds, penalty, batch_seed, count
    )


@dataclass
class SpreadEstimate:
    """Monte-Carlo estimates for a single seed set.

    All three objectives are estimated from the same simulated cascades:
    ``spread`` (Def. 3), ``opinion_spread`` (Def. 6) and
    ``effective_opinion_spread`` (Def. 7, using the engine's ``penalty``).
    """

    seeds: tuple
    simulations: int
    spread: float
    spread_std: float
    opinion_spread: float
    opinion_spread_std: float
    effective_opinion_spread: float
    effective_opinion_spread_std: float
    penalty: float

    def objective(self, kind: str) -> float:
        """Return one of the three estimates by name."""
        if kind == "spread":
            return self.spread
        if kind == "opinion":
            return self.opinion_spread
        if kind == "effective-opinion":
            return self.effective_opinion_spread
        raise ConfigurationError(
            f"unknown objective {kind!r}; expected 'spread', 'opinion' or "
            "'effective-opinion'"
        )


class MonteCarloEngine:
    """Repeated-simulation spread estimator bound to one graph and one model."""

    def __init__(
        self,
        graph: Union[DiGraph, CompiledGraph],
        model: Union[str, DiffusionModel],
        simulations: int = 1000,
        penalty: float = 1.0,
        seed: RandomState = None,
        cache_size: int = 4096,
        workers: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if simulations < 1:
            raise ConfigurationError(f"simulations must be >= 1, got {simulations}")
        if penalty < 0:
            raise ConfigurationError(f"penalty must be >= 0, got {penalty}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.graph = graph.compile() if isinstance(graph, DiGraph) else graph
        self.model = get_model(model) if isinstance(model, str) else model
        self.simulations = simulations
        self.penalty = penalty
        #: Number of worker processes used per estimate.  ``1`` (default) runs
        #: in-process; values > 1 spread the simulation blocks across worker
        #: processes, mirroring the paper's 20-core parallel Monte-Carlo setup.
        self.workers = workers
        #: Cascades per vectorized batch; the last block of an estimate may be
        #: smaller.  Block boundaries depend only on ``simulations`` and
        #: ``batch_size``, never on ``workers``.
        self.batch_size = batch_size
        self._rng = ensure_rng(seed)
        self._cache: OrderedDict[frozenset, SpreadEstimate] = OrderedDict()
        self._cache_size = cache_size
        self._pool = None
        #: Number of individual cascades simulated so far (for benchmarking).
        self.total_simulations_run = 0

    # ------------------------------------------------------------------ API

    def estimate(self, seeds: Sequence[Union[int, Node]]) -> SpreadEstimate:
        """Estimate all objectives for ``seeds`` (labels or compiled indices)."""
        indices = self._normalise_seeds(seeds)
        key = frozenset(indices)
        registry = default_registry()
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            if registry is not None:
                registry.counter(
                    "repro_mc_cache_hits_total", "Monte Carlo estimate cache hits."
                ).inc()
            return cached

        with span(
            "mc_estimate", seeds=len(indices), simulations=int(self.simulations)
        ):
            if self.workers > 1:
                results = self._run_parallel(indices)
            else:
                results = self._run_serial(indices)
        spreads, opinion_spreads, effective_spreads = results
        self.total_simulations_run += self.simulations
        if registry is not None:
            registry.counter(
                "repro_mc_simulations_total", "Monte Carlo cascades simulated."
            ).inc(self.simulations)

        estimate = SpreadEstimate(
            seeds=tuple(seeds),
            simulations=self.simulations,
            spread=float(spreads.mean()),
            spread_std=float(spreads.std()),
            opinion_spread=float(opinion_spreads.mean()),
            opinion_spread_std=float(opinion_spreads.std()),
            effective_opinion_spread=float(effective_spreads.mean()),
            effective_opinion_spread_std=float(effective_spreads.std()),
            penalty=self.penalty,
        )
        # LRU eviction: drop the least recently used entry, never the whole
        # cache — CELF-style algorithms re-evaluate recent seed sets heavily.
        while self._cache and len(self._cache) >= self._cache_size:
            self._cache.popitem(last=False)
        if self._cache_size > 0:
            self._cache[key] = estimate
        return estimate

    def expected_spread(self, seeds: Sequence[Union[int, Node]]) -> float:
        """``sigma(S)`` — expected opinion-oblivious spread."""
        return self.estimate(seeds).spread

    def expected_opinion_spread(self, seeds: Sequence[Union[int, Node]]) -> float:
        """``sigma_o(S)`` — expected opinion spread."""
        return self.estimate(seeds).opinion_spread

    def expected_effective_opinion_spread(
        self, seeds: Sequence[Union[int, Node]]
    ) -> float:
        """``sigma_o_lambda(S)`` — expected effective opinion spread."""
        return self.estimate(seeds).effective_opinion_spread

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------ execution

    def _block_plan(self) -> List[Tuple[int, int]]:
        """``(seed, count)`` per batch block, independent of worker count.

        The per-block seeds are all drawn from the engine RNG up front and
        the block sizes depend only on ``simulations`` and ``batch_size``, so
        serial and parallel execution of the same plan produce bit-identical
        objective arrays for a fixed engine seed regardless of ``workers``.
        Splitting into at least :data:`MIN_BLOCKS` blocks keeps a process
        pool busy even when ``simulations <= batch_size``.
        """
        block = max(1, min(self.batch_size, -(-self.simulations // MIN_BLOCKS)))
        counts = [block] * (self.simulations // block)
        remainder = self.simulations % block
        if remainder:
            counts.append(remainder)
        seeds = self._rng.integers(0, np.iinfo(np.int64).max, size=len(counts))
        return [(int(seed), int(count)) for seed, count in zip(seeds, counts)]

    def _run_serial(self, indices: list[int]) -> np.ndarray:
        """Run every block in-process; returns a ``(3, simulations)`` array."""
        blocks = [
            _simulate_batch(
                self.model, self.graph, tuple(indices), self.penalty, seed, count
            )
            for seed, count in self._block_plan()
        ]
        return np.concatenate(blocks, axis=1)

    def _run_parallel(self, indices: list[int]) -> np.ndarray:
        """Spread the same block plan across ``self.workers`` processes.

        The supervised pool is created once per engine (shipping the graph
        and model to each worker a single time) and reused by every
        subsequent estimate; a worker lost to a crash mid-estimate costs one
        deterministically replayed block, not a wrong or hung estimate.
        """
        pool = self._ensure_pool()
        payloads = [
            (tuple(indices), self.penalty, seed, count)
            for seed, count in self._block_plan()
        ]
        batches = pool.run(payloads)
        return np.concatenate(batches, axis=1)

    def _ensure_pool(self):
        if self._pool is None:
            from repro.runtime.pool import SupervisedPool

            self._pool = SupervisedPool(
                _simulate_batch_pooled,
                workers=self.workers,
                init_fn=_init_pool_worker,
                init_args=(self.model, self.graph),
                name="mc-engine",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial engines)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except (OSError, RuntimeError, TypeError) as error:
            # Only the failures pool teardown is known to produce during
            # interpreter shutdown (dead pipes, half-collected executor
            # internals) are swallowed — and even those leave a trace.  A
            # real bug in a third-party model's teardown now propagates
            # instead of vanishing into a bare `except Exception`.
            _LOGGER.debug("ignoring pool-shutdown failure in __del__: %s", error)

    # ------------------------------------------------------------- helpers

    def _normalise_seeds(self, seeds: Sequence[Union[int, Node]]) -> list[int]:
        indices: list[int] = []
        for seed in seeds:
            if isinstance(seed, (int, np.integer)) and 0 <= int(seed) < self.graph.number_of_nodes:
                # Already a valid compiled index *unless* labels are ints that
                # do not coincide with indices; prefer the label mapping when
                # the label exists and maps elsewhere.
                label_index = self.graph.index_of.get(seed)
                indices.append(int(seed) if label_index is None else label_index)
            elif seed in self.graph.index_of:
                indices.append(self.graph.index_of[seed])
            else:
                raise ConfigurationError(f"seed {seed!r} is not a node of the graph")
        return indices
