"""Monte-Carlo estimation of spread, opinion spread and effective opinion spread.

The paper reports every quality number as an average over 10K Monte-Carlo
simulations.  :class:`MonteCarloEngine` provides that estimation loop with a
configurable number of simulations, deterministic seeding, and an outcome
cache keyed by seed set so greedy algorithms that re-evaluate the same set do
not pay for it twice.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.diffusion.registry import get_model
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph, DiGraph, Node
from repro.utils.rng import RandomState, ensure_rng, spawn_rng


def _simulate_batch(
    model: DiffusionModel,
    graph: CompiledGraph,
    seeds: tuple,
    penalty: float,
    batch_seed: int,
    count: int,
) -> np.ndarray:
    """Run ``count`` cascades and return a ``(3, count)`` array of objectives.

    Module-level so it can be pickled and dispatched to worker processes; the
    paper runs its 10K Monte-Carlo simulations in parallel on 20 cores
    (Sec. 4, footnote 9) and this is the equivalent hook.
    """
    rng = np.random.default_rng(batch_seed)
    results = np.zeros((3, count), dtype=np.float64)
    for i in range(count):
        outcome = model.simulate(graph, list(seeds), rng)
        results[0, i] = outcome.spread()
        results[1, i] = outcome.opinion_spread()
        results[2, i] = outcome.effective_opinion_spread(penalty)
    return results


@dataclass
class SpreadEstimate:
    """Monte-Carlo estimates for a single seed set.

    All three objectives are estimated from the same simulated cascades:
    ``spread`` (Def. 3), ``opinion_spread`` (Def. 6) and
    ``effective_opinion_spread`` (Def. 7, using the engine's ``penalty``).
    """

    seeds: tuple
    simulations: int
    spread: float
    spread_std: float
    opinion_spread: float
    opinion_spread_std: float
    effective_opinion_spread: float
    effective_opinion_spread_std: float
    penalty: float

    def objective(self, kind: str) -> float:
        """Return one of the three estimates by name."""
        if kind == "spread":
            return self.spread
        if kind == "opinion":
            return self.opinion_spread
        if kind == "effective-opinion":
            return self.effective_opinion_spread
        raise ConfigurationError(
            f"unknown objective {kind!r}; expected 'spread', 'opinion' or "
            "'effective-opinion'"
        )


class MonteCarloEngine:
    """Repeated-simulation spread estimator bound to one graph and one model."""

    def __init__(
        self,
        graph: Union[DiGraph, CompiledGraph],
        model: Union[str, DiffusionModel],
        simulations: int = 1000,
        penalty: float = 1.0,
        seed: RandomState = None,
        cache_size: int = 4096,
        workers: int = 1,
    ) -> None:
        if simulations < 1:
            raise ConfigurationError(f"simulations must be >= 1, got {simulations}")
        if penalty < 0:
            raise ConfigurationError(f"penalty must be >= 0, got {penalty}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.graph = graph.compile() if isinstance(graph, DiGraph) else graph
        self.model = get_model(model) if isinstance(model, str) else model
        self.simulations = simulations
        self.penalty = penalty
        #: Number of worker processes used per estimate.  ``1`` (default) runs
        #: in-process; values > 1 split the simulations into per-worker batches,
        #: mirroring the paper's 20-core parallel Monte-Carlo setup.
        self.workers = workers
        self._rng = ensure_rng(seed)
        self._cache: dict[frozenset, SpreadEstimate] = {}
        self._cache_size = cache_size
        #: Number of individual cascades simulated so far (for benchmarking).
        self.total_simulations_run = 0

    # ------------------------------------------------------------------ API

    def estimate(self, seeds: Sequence[Union[int, Node]]) -> SpreadEstimate:
        """Estimate all objectives for ``seeds`` (labels or compiled indices)."""
        indices = self._normalise_seeds(seeds)
        key = frozenset(indices)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        if self.workers > 1:
            results = self._run_parallel(indices)
        else:
            results = self._run_serial(indices)
        spreads, opinion_spreads, effective_spreads = results
        self.total_simulations_run += self.simulations

        estimate = SpreadEstimate(
            seeds=tuple(seeds),
            simulations=self.simulations,
            spread=float(spreads.mean()),
            spread_std=float(spreads.std()),
            opinion_spread=float(opinion_spreads.mean()),
            opinion_spread_std=float(opinion_spreads.std()),
            effective_opinion_spread=float(effective_spreads.mean()),
            effective_opinion_spread_std=float(effective_spreads.std()),
            penalty=self.penalty,
        )
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[key] = estimate
        return estimate

    def expected_spread(self, seeds: Sequence[Union[int, Node]]) -> float:
        """``sigma(S)`` — expected opinion-oblivious spread."""
        return self.estimate(seeds).spread

    def expected_opinion_spread(self, seeds: Sequence[Union[int, Node]]) -> float:
        """``sigma_o(S)`` — expected opinion spread."""
        return self.estimate(seeds).opinion_spread

    def expected_effective_opinion_spread(
        self, seeds: Sequence[Union[int, Node]]
    ) -> float:
        """``sigma_o_lambda(S)`` — expected effective opinion spread."""
        return self.estimate(seeds).effective_opinion_spread

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------ execution

    def _run_serial(self, indices: list[int]) -> np.ndarray:
        """Run every simulation in-process; returns a ``(3, simulations)`` array."""
        results = np.zeros((3, self.simulations), dtype=np.float64)
        rngs = spawn_rng(self._rng, self.simulations)
        for i, rng in enumerate(rngs):
            outcome = self.model.simulate(self.graph, indices, rng)
            results[0, i] = outcome.spread()
            results[1, i] = outcome.opinion_spread()
            results[2, i] = outcome.effective_opinion_spread(self.penalty)
        return results

    def _run_parallel(self, indices: list[int]) -> np.ndarray:
        """Split the simulations across ``self.workers`` processes."""
        batch_sizes = [len(chunk) for chunk in np.array_split(range(self.simulations),
                                                              self.workers) if len(chunk)]
        batch_seeds = self._rng.integers(0, np.iinfo(np.int64).max, size=len(batch_sizes))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(
                    _simulate_batch,
                    self.model,
                    self.graph,
                    tuple(indices),
                    self.penalty,
                    int(batch_seed),
                    int(size),
                )
                for batch_seed, size in zip(batch_seeds, batch_sizes)
            ]
            batches = [future.result() for future in futures]
        return np.concatenate(batches, axis=1)

    # ------------------------------------------------------------- helpers

    def _normalise_seeds(self, seeds: Sequence[Union[int, Node]]) -> list[int]:
        indices: list[int] = []
        for seed in seeds:
            if isinstance(seed, (int, np.integer)) and 0 <= int(seed) < self.graph.number_of_nodes:
                # Already a valid compiled index *unless* labels are ints that
                # do not coincide with indices; prefer the label mapping when
                # the label exists and maps elsewhere.
                label_index = self.graph.index_of.get(seed)
                indices.append(int(seed) if label_index is None else label_index)
            elif seed in self.graph.index_of:
                indices.append(self.graph.index_of[seed])
            else:
                raise ConfigurationError(f"seed {seed!r} is not a node of the graph")
        return indices
