"""The Opinion-cum-Interaction (OI) model — the paper's diffusion model.

OI layers opinion dynamics on top of a fundamental activation model (IC or
LT, Sec. 2.2):

* **Activation layer** — identical to IC (independent activation attempts
  with probability ``p``) or LT (weighted thresholds).
* **Opinion layer** — a seed keeps its own opinion.  When a node ``v`` is
  activated under the IC first layer by node ``u``, its final opinion becomes
  ``o'_v = (o_v + (-1)^alpha * o'_u) / 2`` where ``alpha = 0`` with
  probability ``phi_(u,v)`` (agreement) and ``alpha = 1`` otherwise
  (disagreement).  Under the LT first layer the contribution of all active
  in-neighbours is averaged:
  ``o'_v = (o_v + mean_u (-1)^{alpha_(u,v)} o'_u) / 2``.

Once active, a node keeps its effective opinion for the rest of the cascade.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.diffusion.base import (
    BatchOutcome,
    DiffusionModel,
    DiffusionOutcome,
    validate_seed_indices,
)
from repro.diffusion.batch import run_ic_batch, run_lt_batch, wc_out_probabilities
from repro.diffusion.linear_threshold import draw_thresholds, resolve_lt_weights
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph

#: First-layer activation models supported by OI.
FIRST_LAYERS = ("ic", "wc", "lt")


class OpinionInteractionModel(DiffusionModel):
    """The OI model with a configurable first layer (``"ic"``, ``"wc"`` or ``"lt"``)."""

    opinion_aware = True

    def __init__(self, first_layer: str = "ic") -> None:
        if first_layer not in FIRST_LAYERS:
            raise ConfigurationError(
                f"first_layer must be one of {FIRST_LAYERS}, got {first_layer!r}"
            )
        self.first_layer = first_layer
        self.name = f"oi-{first_layer}"

    def __repr__(self) -> str:
        return f"OpinionInteractionModel(first_layer={self.first_layer!r})"

    # ------------------------------------------------------------------ API

    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        if self.first_layer == "lt":
            return self._simulate_lt(graph, seeds, rng)
        return self._simulate_ic(graph, seeds, rng)

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        if self.first_layer == "lt":
            return run_lt_batch(graph, seeds, rng, count, opinion="interaction")
        if self.first_layer == "wc":
            probabilities = wc_out_probabilities(graph)
        else:
            probabilities = graph.out_probability
        return run_ic_batch(
            graph, seeds, rng, count, probabilities, opinion="interaction"
        )

    # --------------------------------------------------------- IC first layer

    def _edge_activation_probabilities(self, graph: CompiledGraph) -> np.ndarray:
        """Per-out-edge activation probabilities for the scalar IC layer.

        The WC reciprocal in-degree array used to be recomputed for every
        frontier node of every cascade; it is an edge-aligned constant of
        the graph, served from the :class:`CompiledGraph` cache (the values
        are identical to the batch kernel's :func:`wc_out_probabilities`).
        """
        if self.first_layer == "wc":
            return graph.resolved_edge_probabilities("wc")
        return graph.out_probability

    def _simulate_ic(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        n = graph.number_of_nodes
        edge_probability = self._edge_activation_probabilities(graph)
        active = np.zeros(n, dtype=bool)
        final_opinion = np.zeros(n, dtype=np.float64)

        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            final_opinion[seed] = graph.opinions[seed]
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = float(graph.opinions[seed])
            frontier.append(seed)

        rounds = 0
        while frontier:
            rounds += 1
            next_frontier: deque[int] = deque()
            while frontier:
                node = frontier.popleft()
                neighbors = graph.out_neighbors(node)
                if neighbors.size == 0:
                    continue
                start = graph.out_indptr[node]
                probabilities = edge_probability[start:start + neighbors.size]
                interactions = graph.out_interactions(node)
                draws = rng.random(neighbors.size)
                successes = np.flatnonzero(draws < probabilities)
                if successes.size == 0:
                    continue
                agreement_draws = rng.random(successes.size)
                for slot, position in enumerate(successes):
                    target = int(neighbors[position])
                    if active[target]:
                        continue
                    agrees = agreement_draws[slot] < interactions[position]
                    contribution = final_opinion[node] if agrees else -final_opinion[node]
                    opinion = (graph.opinions[target] + contribution) / 2.0
                    active[target] = True
                    final_opinion[target] = opinion
                    outcome.activated.append(target)
                    outcome.final_opinions[target] = float(opinion)
                    next_frontier.append(target)
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome

    # --------------------------------------------------------- LT first layer

    def _simulate_lt(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        n = graph.number_of_nodes
        active = np.zeros(n, dtype=bool)
        final_opinion = np.zeros(n, dtype=np.float64)
        accumulated = np.zeros(n, dtype=np.float64)
        thresholds = draw_thresholds(graph, rng)
        weights = resolve_lt_weights(graph)

        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            final_opinion[seed] = graph.opinions[seed]
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = float(graph.opinions[seed])
            frontier.append(seed)

        rounds = 0
        while frontier:
            rounds += 1
            touched: set[int] = set()
            while frontier:
                node = frontier.popleft()
                # The LT weights are aligned with the in-CSR; translate each
                # traversed out-edge via the graph's cached position map
                # instead of linearly scanning the target's in-neighbour list
                # (which made hub rounds O(deg^2)).
                start, end = graph.out_indptr[node], graph.out_indptr[node + 1]
                in_positions = graph.out_to_in_position[start:end]
                for offset in range(end - start):
                    target = int(graph.out_indices[start + offset])
                    if active[target]:
                        continue
                    accumulated[target] += weights[in_positions[offset]]
                    touched.add(target)
            # Strict synchronous rounds: decide the round's activations first,
            # then average contributions against the *pre-round* active set,
            # so the result does not depend on the iteration order of
            # ``touched`` (and matches the batch kernel's semantics).
            newly = [
                target for target in touched
                if not active[target] and accumulated[target] >= thresholds[target]
            ]
            next_frontier: deque[int] = deque()
            for target in newly:
                # Average the (possibly sign-flipped) opinions of the already
                # active in-neighbours, weighted equally (Sec. 2.2, OI under LT).
                start, end = graph.in_indptr[target], graph.in_indptr[target + 1]
                contributions: list[float] = []
                for offset in range(start, end):
                    source = int(graph.in_indices[offset])
                    if not active[source]:
                        continue
                    agrees = rng.random() < graph.in_interaction[offset]
                    value = final_opinion[source] if agrees else -final_opinion[source]
                    contributions.append(value)
                if contributions:
                    neighbour_term = float(np.mean(contributions))
                else:  # pragma: no cover - activation requires an active in-neighbour
                    neighbour_term = 0.0
                opinion = (graph.opinions[target] + neighbour_term) / 2.0
                final_opinion[target] = opinion
                outcome.activated.append(target)
                outcome.final_opinions[target] = float(opinion)
                next_frontier.append(target)
            for target in newly:
                active[target] = True
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome
