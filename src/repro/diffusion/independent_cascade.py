"""The Independent Cascade (IC) model of Kempe, Kleinberg and Tardos.

At each synchronous step every node activated in the previous step gets one
independent attempt to activate each of its out-neighbours ``v`` with
probability ``p_(u,v)``.  The cascade stops when a step activates nobody.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.diffusion.base import (
    BatchOutcome,
    DiffusionModel,
    DiffusionOutcome,
    validate_seed_indices,
)
from repro.diffusion.batch import run_ic_batch
from repro.graphs.digraph import CompiledGraph


class IndependentCascadeModel(DiffusionModel):
    """Opinion-oblivious IC diffusion.

    The final opinion recorded for each activated node is simply its initial
    opinion (zero for unannotated graphs); that is how the paper evaluates the
    opinion spread of seed sets chosen under IC.
    """

    name = "ic"
    opinion_aware = False

    def edge_probabilities(self, graph: CompiledGraph, node: int) -> np.ndarray:
        """Activation probabilities for the out-edges of ``node``.

        Subclasses (the weighted-cascade model) override this hook; everything
        else about the cascade dynamics is shared.
        """
        return graph.out_probabilities(node)

    def batch_edge_probabilities(self, graph: CompiledGraph) -> np.ndarray:
        """Activation probabilities for *all* edges, aligned with the out-CSR.

        The batch counterpart of :meth:`edge_probabilities`; the
        weighted-cascade model overrides this hook too.
        """
        return graph.out_probability

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        return run_ic_batch(
            graph, seeds, rng, count, self.batch_edge_probabilities(graph)
        )

    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        active = np.zeros(graph.number_of_nodes, dtype=bool)
        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = float(graph.opinions[seed])
            frontier.append(seed)

        rounds = 0
        while frontier:
            rounds += 1
            next_frontier: deque[int] = deque()
            while frontier:
                node = frontier.popleft()
                neighbors = graph.out_neighbors(node)
                if neighbors.size == 0:
                    continue
                probabilities = self.edge_probabilities(graph, node)
                draws = rng.random(neighbors.size)
                for position in np.flatnonzero(draws < probabilities):
                    target = int(neighbors[position])
                    if not active[target]:
                        active[target] = True
                        outcome.activated.append(target)
                        outcome.final_opinions[target] = float(graph.opinions[target])
                        next_frontier.append(target)
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome
