"""Functional helpers for the three spread objectives.

These are thin conveniences over :class:`~repro.diffusion.simulation.MonteCarloEngine`
for callers that want a one-off estimate without managing an engine object,
plus single-cascade helpers used in tests and examples.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.diffusion.base import BatchOutcome, DiffusionModel, DiffusionOutcome
from repro.diffusion.registry import get_model
from repro.diffusion.simulation import MonteCarloEngine
from repro.graphs.digraph import CompiledGraph, DiGraph, Node
from repro.utils.rng import RandomState, ensure_rng

GraphLike = Union[DiGraph, CompiledGraph]
ModelLike = Union[str, DiffusionModel]


def simulate_once(
    graph: GraphLike,
    model: ModelLike,
    seeds: Sequence[Node],
    seed: RandomState = None,
) -> DiffusionOutcome:
    """Run a single cascade and return the raw outcome."""
    compiled = graph.compile() if isinstance(graph, DiGraph) else graph
    resolved = get_model(model) if isinstance(model, str) else model
    indices = [compiled.index_of.get(s, s) for s in seeds]
    return resolved.simulate(compiled, [int(i) for i in indices], ensure_rng(seed))


def simulate_batch(
    graph: GraphLike,
    model: ModelLike,
    seeds: Sequence[Node],
    count: int,
    seed: RandomState = None,
) -> BatchOutcome:
    """Run ``count`` cascades as one vectorized batch and return the outcome."""
    compiled = graph.compile() if isinstance(graph, DiGraph) else graph
    resolved = get_model(model) if isinstance(model, str) else model
    indices = [compiled.index_of.get(s, s) for s in seeds]
    return resolved.simulate_batch(
        compiled, [int(i) for i in indices], ensure_rng(seed), count
    )


def spread(outcome: DiffusionOutcome) -> float:
    """Opinion-oblivious spread of a single cascade (Def. 3)."""
    return outcome.spread()


def opinion_spread(outcome: DiffusionOutcome) -> float:
    """Opinion spread of a single cascade (Def. 6)."""
    return outcome.opinion_spread()


def effective_opinion_spread(outcome: DiffusionOutcome, penalty: float = 1.0) -> float:
    """Effective opinion spread of a single cascade (Def. 7)."""
    return outcome.effective_opinion_spread(penalty)


def expected_spread(
    graph: GraphLike,
    model: ModelLike,
    seeds: Sequence[Node],
    simulations: int = 1000,
    seed: RandomState = None,
) -> float:
    """Monte-Carlo estimate of ``sigma(S)``."""
    engine = MonteCarloEngine(graph, model, simulations=simulations, seed=seed)
    return engine.expected_spread(seeds)


def expected_opinion_spread(
    graph: GraphLike,
    model: ModelLike,
    seeds: Sequence[Node],
    simulations: int = 1000,
    seed: RandomState = None,
) -> float:
    """Monte-Carlo estimate of ``sigma_o(S)``."""
    engine = MonteCarloEngine(graph, model, simulations=simulations, seed=seed)
    return engine.expected_opinion_spread(seeds)


def expected_effective_opinion_spread(
    graph: GraphLike,
    model: ModelLike,
    seeds: Sequence[Node],
    simulations: int = 1000,
    penalty: float = 1.0,
    seed: RandomState = None,
) -> float:
    """Monte-Carlo estimate of ``sigma^o_lambda(S)``."""
    engine = MonteCarloEngine(
        graph, model, simulations=simulations, penalty=penalty, seed=seed
    )
    return engine.expected_effective_opinion_spread(seeds)
