"""The Linear Threshold (LT) model.

Each node ``v`` holds an activation threshold ``theta_v``; it activates once
the sum of weights ``w_(u,v)`` over its *active* in-neighbours reaches the
threshold.  Following the conventional randomised formulation (and the paper's
experimental setup), thresholds are drawn uniformly at random per simulation
unless the node carries an explicit threshold annotation, and weights default
to ``1 / in_degree(v)`` when the graph has not been given LT weights.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.diffusion.base import (
    BatchOutcome,
    DiffusionModel,
    DiffusionOutcome,
    validate_seed_indices,
)
from repro.graphs.digraph import CompiledGraph


def resolve_lt_weights(graph: CompiledGraph) -> np.ndarray:
    """Edge-aligned LT weights for the *in*-adjacency arrays.

    Uses the annotated weights when any are present; otherwise falls back to
    the conventional ``1 / in_degree(v)`` assignment.
    """
    if np.any(graph.in_weight > 0):
        return graph.in_weight
    in_degrees = np.diff(graph.in_indptr).astype(np.float64)
    safe = np.where(in_degrees > 0, in_degrees, 1.0)
    weights = np.repeat(1.0 / safe, np.diff(graph.in_indptr))
    return weights


def draw_thresholds(graph: CompiledGraph, rng: np.random.Generator) -> np.ndarray:
    """Per-node thresholds: annotated values where present, uniform otherwise."""
    thresholds = rng.random(graph.number_of_nodes)
    annotated = ~np.isnan(graph.thresholds)
    thresholds[annotated] = graph.thresholds[annotated]
    return thresholds


class LinearThresholdModel(DiffusionModel):
    """Opinion-oblivious LT diffusion with synchronous rounds."""

    name = "lt"
    opinion_aware = False

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        from repro.diffusion.batch import run_lt_batch

        return run_lt_batch(graph, seeds, rng, count, opinion="initial")

    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        n = graph.number_of_nodes
        active = np.zeros(n, dtype=bool)
        accumulated = np.zeros(n, dtype=np.float64)
        thresholds = draw_thresholds(graph, rng)
        weights = resolve_lt_weights(graph)

        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = float(graph.opinions[seed])
            frontier.append(seed)

        rounds = 0
        while frontier:
            rounds += 1
            next_frontier: deque[int] = deque()
            # Push the weight of every newly active node onto its out-neighbours.
            touched: set[int] = set()
            while frontier:
                node = frontier.popleft()
                # The weight of edge (node -> target) lives in the in-CSR of
                # target; the cached out->in position map replaces the
                # per-edge in-neighbour scan (O(deg^2) on hubs).
                start, end = graph.out_indptr[node], graph.out_indptr[node + 1]
                in_positions = graph.out_to_in_position[start:end]
                for offset in range(end - start):
                    target = int(graph.out_indices[start + offset])
                    if active[target]:
                        continue
                    accumulated[target] += weights[in_positions[offset]]
                    touched.add(target)
            for target in touched:
                if not active[target] and accumulated[target] >= thresholds[target]:
                    active[target] = True
                    outcome.activated.append(target)
                    outcome.final_opinions[target] = float(graph.opinions[target])
                    next_frontier.append(target)
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome
