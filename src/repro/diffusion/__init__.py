"""Information-diffusion models and the Monte-Carlo spread estimation engine.

Opinion-oblivious models (first layer):

* :class:`IndependentCascadeModel` — IC with per-edge probabilities.
* :class:`WeightedCascadeModel` — WC, i.e. IC with ``p = 1/in_degree``.
* :class:`LinearThresholdModel` — LT with random (or fixed) thresholds.
* :class:`LiveEdgeModel` — the live-edge formulation equivalent to LT.

Opinion-aware models (second layer on top of IC or LT):

* :class:`OpinionInteractionModel` — the paper's OI model.
* :class:`ICNModel` — IC-N baseline (Chen et al., SDM 2011).
* :class:`OCModel` — OC baseline (Zhang et al., ICDCS 2013).
"""

from repro.diffusion.base import BatchOutcome, DiffusionModel, DiffusionOutcome
from repro.diffusion.independent_cascade import IndependentCascadeModel
from repro.diffusion.weighted_cascade import WeightedCascadeModel
from repro.diffusion.linear_threshold import LinearThresholdModel
from repro.diffusion.live_edge import LiveEdgeModel
from repro.diffusion.opinion_interaction import OpinionInteractionModel
from repro.diffusion.icn import ICNModel
from repro.diffusion.oc import OCModel
from repro.diffusion.registry import available_models, get_model
from repro.diffusion.simulation import MonteCarloEngine, SpreadEstimate
from repro.diffusion.spread import (
    effective_opinion_spread,
    expected_effective_opinion_spread,
    expected_opinion_spread,
    expected_spread,
    opinion_spread,
    simulate_batch,
    spread,
)

__all__ = [
    "BatchOutcome",
    "DiffusionModel",
    "DiffusionOutcome",
    "IndependentCascadeModel",
    "WeightedCascadeModel",
    "LinearThresholdModel",
    "LiveEdgeModel",
    "OpinionInteractionModel",
    "ICNModel",
    "OCModel",
    "available_models",
    "get_model",
    "MonteCarloEngine",
    "SpreadEstimate",
    "simulate_batch",
    "spread",
    "opinion_spread",
    "effective_opinion_spread",
    "expected_spread",
    "expected_opinion_spread",
    "expected_effective_opinion_spread",
]
