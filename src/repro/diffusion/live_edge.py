"""The live-edge formulation of the Linear Threshold model.

Kempe et al. proved LT is equivalent to the following random-graph process:
every node independently keeps *at most one* of its incoming edges — edge
``(u, v)`` is selected with probability ``w_(u,v)`` and no edge is selected
with probability ``1 - sum_u w_(u,v)``.  The spread of a seed set is the
number of nodes reachable from it through the selected ("live") edges.

The paper's Sec. 3.3 uses this formulation to extend EaSyIM/OSIM to LT, and
the test suite uses it to cross-validate :class:`LinearThresholdModel`.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.diffusion.base import (
    BatchOutcome,
    DiffusionModel,
    DiffusionOutcome,
    validate_seed_indices,
)
from repro.diffusion.linear_threshold import resolve_lt_weights
from repro.graphs.digraph import CompiledGraph


class LiveEdgeModel(DiffusionModel):
    """LT diffusion simulated through its live-edge equivalence."""

    name = "lt-live-edge"
    opinion_aware = False

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        from repro.diffusion.batch import run_live_edge_batch

        return run_live_edge_batch(graph, seeds, rng, count)

    def sample_live_parents(
        self, graph: CompiledGraph, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the live in-edge of every node; ``-1`` means no live edge."""
        n = graph.number_of_nodes
        weights = resolve_lt_weights(graph)
        parents = np.full(n, -1, dtype=np.int64)
        for node in range(n):
            start, end = graph.in_indptr[node], graph.in_indptr[node + 1]
            if start == end:
                continue
            local_weights = weights[start:end]
            total = float(local_weights.sum())
            draw = rng.random()
            if draw >= total:
                continue
            cumulative = np.cumsum(local_weights)
            position = int(np.searchsorted(cumulative, draw, side="right"))
            parents[node] = graph.in_indices[start + position]
        return parents

    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        parents = self.sample_live_parents(graph, rng)

        # Build the forward (live) adjacency: child lists keyed by parent.
        children: dict[int, list[int]] = {}
        for node, parent in enumerate(parents):
            if parent >= 0:
                children.setdefault(int(parent), []).append(node)

        active = np.zeros(graph.number_of_nodes, dtype=bool)
        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = float(graph.opinions[seed])
            frontier.append(seed)
        rounds = 0
        while frontier:
            rounds += 1
            next_frontier: deque[int] = deque()
            while frontier:
                node = frontier.popleft()
                for child in children.get(node, ()):
                    if not active[child]:
                        active[child] = True
                        outcome.activated.append(child)
                        outcome.final_opinions[child] = float(graph.opinions[child])
                        next_frontier.append(child)
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome
