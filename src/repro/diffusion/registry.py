"""Name-based lookup of diffusion models.

The public API, the CLI and the benchmark harness refer to models by short
string identifiers; :func:`get_model` turns those identifiers into configured
model instances.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.diffusion.base import DiffusionModel
from repro.diffusion.icn import ICNModel
from repro.diffusion.independent_cascade import IndependentCascadeModel
from repro.diffusion.linear_threshold import LinearThresholdModel
from repro.diffusion.live_edge import LiveEdgeModel
from repro.diffusion.oc import OCModel
from repro.diffusion.opinion_interaction import OpinionInteractionModel
from repro.diffusion.weighted_cascade import WeightedCascadeModel
from repro.exceptions import ConfigurationError

_FACTORIES: Dict[str, Callable[[], DiffusionModel]] = {
    "ic": IndependentCascadeModel,
    "wc": WeightedCascadeModel,
    "lt": LinearThresholdModel,
    "lt-live-edge": LiveEdgeModel,
    "oi-ic": lambda: OpinionInteractionModel("ic"),
    "oi-wc": lambda: OpinionInteractionModel("wc"),
    "oi-lt": lambda: OpinionInteractionModel("lt"),
    "icn": ICNModel,
    "oc": OCModel,
}

#: Models whose spread definition is opinion-aware.
OPINION_AWARE_MODELS = frozenset({"oi-ic", "oi-wc", "oi-lt", "icn", "oc"})


def available_models() -> list[str]:
    """Sorted list of the registered model identifiers."""
    return sorted(_FACTORIES)


def get_model(name: str, **kwargs: object) -> DiffusionModel:
    """Instantiate the diffusion model registered under ``name``.

    Keyword arguments are forwarded to the model constructor (e.g.
    ``get_model("icn", quality_factor=0.8)``).
    """
    if isinstance(name, DiffusionModel):
        return name
    key = str(name).lower()
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown diffusion model {name!r}; available: {', '.join(available_models())}"
        )
    factory = _FACTORIES[key]
    if kwargs:
        if key == "icn":
            return ICNModel(**kwargs)  # type: ignore[arg-type]
        if key.startswith("oi-"):
            return OpinionInteractionModel(key.split("-", 1)[1])
        raise ConfigurationError(f"model {name!r} does not accept parameters: {kwargs}")
    return factory()
