"""The OC model (Zhang, Dinh and Thai, ICDCS 2013) — opinion-aware LT baseline.

OC couples opinion formation with the Linear Threshold activation layer: when
a node ``v`` activates, its final opinion depends on its own initial opinion
and the final opinions of the in-neighbours that activated it, without any
notion of pairwise interaction probability.  The paper lists the missing
interaction term and the LT-only first layer as OC's main limitations
(Sec. 1, limitations 3-4).

Implementation detail: activation follows LT (random thresholds, ``1/indeg``
weights by default); the final opinion of a newly activated node is the
average of its own opinion and the mean final opinion of its active
in-neighbours — the same mixing rule as OI with ``phi = 1`` everywhere.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.diffusion.base import (
    BatchOutcome,
    DiffusionModel,
    DiffusionOutcome,
    validate_seed_indices,
)
from repro.diffusion.batch import run_lt_batch
from repro.diffusion.linear_threshold import draw_thresholds, resolve_lt_weights
from repro.graphs.digraph import CompiledGraph


class OCModel(DiffusionModel):
    """Opinion-aware LT diffusion without interaction probabilities."""

    name = "oc"
    opinion_aware = True

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        return run_lt_batch(graph, seeds, rng, count, opinion="mean")

    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        n = graph.number_of_nodes
        active = np.zeros(n, dtype=bool)
        final_opinion = np.zeros(n, dtype=np.float64)
        accumulated = np.zeros(n, dtype=np.float64)
        thresholds = draw_thresholds(graph, rng)
        weights = resolve_lt_weights(graph)

        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            final_opinion[seed] = graph.opinions[seed]
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = float(graph.opinions[seed])
            frontier.append(seed)

        rounds = 0
        while frontier:
            rounds += 1
            touched: set[int] = set()
            while frontier:
                node = frontier.popleft()
                # In-CSR-aligned LT weights looked up through the cached
                # out->in edge position map (no per-edge in-neighbour scan).
                start, end = graph.out_indptr[node], graph.out_indptr[node + 1]
                in_positions = graph.out_to_in_position[start:end]
                for offset in range(end - start):
                    target = int(graph.out_indices[start + offset])
                    if active[target]:
                        continue
                    accumulated[target] += weights[in_positions[offset]]
                    touched.add(target)
            # Strict synchronous rounds: decide every activation of the round
            # first, then compute opinions against the *pre-round* active set,
            # so the result does not depend on the iteration order of
            # ``touched`` (and matches the batch kernel's semantics).
            newly = [
                target for target in touched
                if not active[target] and accumulated[target] >= thresholds[target]
            ]
            next_frontier: deque[int] = deque()
            for target in newly:
                start, end = graph.in_indptr[target], graph.in_indptr[target + 1]
                neighbour_opinions = [
                    final_opinion[int(graph.in_indices[offset])]
                    for offset in range(start, end)
                    if active[int(graph.in_indices[offset])]
                ]
                neighbour_term = float(np.mean(neighbour_opinions)) if neighbour_opinions else 0.0
                opinion = (graph.opinions[target] + neighbour_term) / 2.0
                final_opinion[target] = opinion
                outcome.activated.append(target)
                outcome.final_opinions[target] = float(opinion)
                next_frontier.append(target)
            for target in newly:
                active[target] = True
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome
