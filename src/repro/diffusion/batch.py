"""Vectorized batch cascade kernels shared by the native diffusion models.

Every kernel advances ``count`` independent cascades simultaneously: the
activation state is a ``(count, n)`` boolean matrix, the frontier is a pair of
flat ``(cascade, node)`` index arrays, and each synchronous diffusion round
expands *every* cascade's frontier in one CSR pass — ``np.repeat`` over the
``indptr`` degree slices plus a single ``rng.random`` draw covering all
frontier edges of the round.  No per-node or per-cascade Python loop survives
on the hot path, which is where the ≥10x Monte-Carlo speedup over the scalar
``simulate`` implementations comes from.

Two frontier cores cover the whole model zoo:

* :func:`run_ic_batch` — the IC family (IC, WC, OI-IC/OI-WC, IC-N): each
  frontier node gets one independent activation attempt per out-edge.
* :func:`run_lt_batch` — the LT family (LT, OC, OI-LT): frontier nodes push
  their edge weight onto inactive out-neighbours, which activate once the
  accumulated weight reaches their (per-cascade) random threshold.

Opinion formation is layered onto both cores through a small ``opinion``
mode switch, mirroring how the paper layers the OI opinion dynamics on an IC
or LT activation layer (Sec. 2.2).  :func:`run_live_edge_batch` additionally
vectorises the live-edge formulation of LT (one in-edge sampled per node).

A note on tie-breaking: when several frontier nodes successfully reach the
same inactive target in the same round, both the scalar models and the batch
kernels apply the same rule — the *first* successful attempt in frontier
order wins (batch: a sort-free scatter dedup, :func:`_dedup_first`).  The
frontier orderings are not bit-identical (the scalar queue preserves
activation order, the batch frontier is key-sorted within a round), so
individual cascades can differ, but the tie-break rule itself agrees —
in particular, seeds contest targets in exactly the same order — and the
objective distributions are statistically indistinguishable.  The LT-family
opinion layers average in-neighbour opinions against the *pre-round* active
set (strict synchronous semantics); the scalar OC/OI-LT models implement the
same rule.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.base import BatchOutcome, validate_seed_indices
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph

_EMPTY = np.empty(0, dtype=np.int64)


def _in_degree_reciprocal(graph: CompiledGraph) -> np.ndarray:
    """Per-node ``1 / in_degree`` (1.0 for sources, which never matter)."""
    in_degrees = np.diff(graph.in_indptr).astype(np.float64)
    safe = np.where(in_degrees > 0, in_degrees, 1.0)
    return 1.0 / safe


def wc_out_probabilities(graph: CompiledGraph) -> np.ndarray:
    """Edge-aligned weighted-cascade probabilities ``1 / in_degree(target)``.

    Served from the per-graph cache, so repeated simulate calls (k per
    greedy-family selection) stop re-deriving the same m-sized array.
    """
    return graph.resolved_edge_probabilities("wc")


def resolve_out_lt_weights(graph: CompiledGraph) -> np.ndarray:
    """Edge-aligned LT weights for the *out*-adjacency arrays.

    Mirrors :func:`repro.diffusion.linear_threshold.resolve_lt_weights` but
    aligned with the forward CSR the batch kernels traverse: annotated
    weights where present, ``1 / in_degree(target)`` otherwise.
    """
    if np.any(graph.in_weight > 0):
        return graph.out_weight
    return _in_degree_reciprocal(graph)[graph.out_indices]


def draw_threshold_matrix(
    graph: CompiledGraph, rng: np.random.Generator, count: int
) -> np.ndarray:
    """``(count, n)`` thresholds: annotated values where present, uniform otherwise."""
    thresholds = rng.random((count, graph.number_of_nodes))
    annotated = ~np.isnan(graph.thresholds)
    if annotated.any():
        thresholds[:, annotated] = graph.thresholds[annotated]
    return thresholds


def _expand_csr(
    indptr: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten the CSR slices of ``nodes`` into one edge-position array.

    Returns ``(positions, owner)`` where ``positions`` indexes the global
    edge arrays and ``owner[j]`` is the index into ``nodes`` whose slice edge
    ``j`` came from.  This is the ``np.repeat``-over-``indptr`` trick that
    replaces the per-node neighbour loop.
    """
    degrees = indptr[nodes + 1] - indptr[nodes]
    total = int(degrees.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    owner = np.repeat(np.arange(nodes.size), degrees)
    slice_starts = np.cumsum(degrees) - degrees
    within = np.arange(total) - slice_starts[owner]
    positions = indptr[nodes][owner] + within
    return positions, owner


def _validate_count(count: int) -> int:
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    return int(count)


def _seed_frontier(
    seed_array: np.ndarray, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Initial ``(cascade, node)`` frontier pairs: every seed in every cascade."""
    cascades = np.repeat(np.arange(count, dtype=np.int64), seed_array.size)
    nodes = np.tile(seed_array, count)
    return cascades, nodes


def _dedup_first(keys: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Indices of the *first* occurrence of each distinct value of ``keys``.

    Sort-free alternative to ``np.unique(keys, return_index=True)`` for the
    per-round winner selection: scatter each element's position into
    ``scratch`` in reverse (numpy keeps the last write for duplicate
    indices, so the reversed scatter leaves the first occurrence) and keep
    the elements that read their own position back.  First-wins matches the
    scalar models' tie-break rule.  ``scratch`` is a reusable
    ``(count * n,)`` int array; it never needs resetting because every entry
    read was just written by this call.
    """
    order = np.arange(keys.size, dtype=scratch.dtype)
    scratch[keys[::-1]] = order[::-1]
    return np.flatnonzero(scratch[keys] == order)


def _count_rounds(rounds: np.ndarray, frontier_cascades: np.ndarray) -> None:
    """Increment the round counter of every cascade with a non-empty frontier."""
    alive = np.zeros(rounds.size, dtype=bool)
    alive[frontier_cascades] = True
    rounds += alive


# ---------------------------------------------------------------- IC family


def run_ic_batch(
    graph: CompiledGraph,
    seeds: Sequence[int],
    rng: np.random.Generator,
    count: int,
    edge_probability: np.ndarray,
    opinion: str = "initial",
    quality_factor: Optional[float] = None,
) -> BatchOutcome:
    """Batch kernel for IC-style diffusion (independent per-edge attempts).

    Parameters
    ----------
    edge_probability:
        ``(m,)`` activation probabilities aligned with the out-CSR edge
        arrays (uniform IC probabilities, WC ``1/indeg``, ...).
    opinion:
        ``"initial"`` — activated nodes keep their initial opinion (IC/WC);
        ``"interaction"`` — the OI mixing rule using the activating edge's
        interaction probability ``phi`` (Sec. 2.2);
        ``"polarity"`` — the IC-N ±1 polarity rule driven by
        ``quality_factor``.
    """
    count = _validate_count(count)
    validated = validate_seed_indices(graph, seeds)
    n = graph.number_of_nodes
    seed_array = np.asarray(validated, dtype=np.int64)
    # Flat (count * n) state keyed by ``cascade * n + node`` — 1D fancy
    # indexing on precomputed keys is measurably cheaper than repeated 2D
    # index arithmetic on the hot path.
    active = np.zeros(count * n, dtype=bool)
    # Opinion-oblivious cascades don't need per-node opinion state in the
    # loop — final opinions are just the initial opinions of active nodes,
    # reconstructed in one broadcast multiply at the end.
    track_opinions = opinion != "initial"
    opinions = np.zeros(count * n, dtype=np.float64) if track_opinions else None
    rounds = np.zeros(count, dtype=np.int64)
    scratch = np.empty(count * n, dtype=np.int32)
    indptr = graph.out_indptr

    frontier_cas, frontier_node = _seed_frontier(seed_array, count)
    seed_keys = frontier_cas * n + frontier_node
    if seed_array.size:
        active[seed_keys] = True
        if opinion == "polarity":
            positive = rng.random(seed_keys.size) < quality_factor
            opinions[seed_keys] = np.where(positive, 1.0, -1.0)
        elif track_opinions:
            opinions[seed_keys] = graph.opinions[frontier_node]

    while frontier_cas.size:
        _count_rounds(rounds, frontier_cas)

        # CSR expansion inlined (rather than via _expand_csr) to skip the
        # ``owner`` indirection: the cascade of every edge comes straight
        # from np.repeat over the frontier, which is cheaper on this path.
        degrees = indptr[frontier_node + 1] - indptr[frontier_node]
        total = int(degrees.sum())
        if total == 0:
            break
        positions = np.arange(total) + np.repeat(
            indptr[frontier_node] - np.cumsum(degrees) + degrees, degrees
        )
        cascades = np.repeat(frontier_cas, degrees)
        targets = graph.out_indices[positions]
        keys = cascades * n + targets

        draws = rng.random(total)
        success = draws < edge_probability[positions]
        # Keep only successful attempts on still-inactive targets.
        success &= ~active[keys]
        if not success.any():
            break

        hit = np.flatnonzero(success)
        winners = hit[_dedup_first(keys[hit], scratch)]
        win_keys = keys[winners]
        win_tgt = targets[winners]
        win_cas = cascades[winners]

        if opinion == "initial":
            # Winner identity is irrelevant for opinion-oblivious cascades.
            active[win_keys] = True
            frontier_cas = win_cas
            frontier_node = win_tgt
            continue

        source_keys = win_cas * n + np.repeat(frontier_node, degrees)[winners]

        active[win_keys] = True
        if opinion == "interaction":
            agrees = (
                rng.random(winners.size)
                < graph.out_interaction[positions[winners]]
            )
            source_opinion = opinions[source_keys]
            contribution = np.where(agrees, source_opinion, -source_opinion)
            opinions[win_keys] = (graph.opinions[win_tgt] + contribution) / 2.0
        else:  # polarity (IC-N): negativity dominates, else quality draw
            source_sign = opinions[source_keys]
            positive = rng.random(winners.size) < quality_factor
            sign = np.where(source_sign < 0, -1.0, np.where(positive, 1.0, -1.0))
            opinions[win_keys] = sign

        frontier_cas = win_cas
        frontier_node = win_tgt

    active_matrix = active.reshape(count, n)
    if track_opinions:
        opinion_matrix = opinions.reshape(count, n)
    else:
        opinion_matrix = active_matrix * graph.opinions[None, :]
    return BatchOutcome(
        seeds=validated,
        active=active_matrix,
        opinions=opinion_matrix,
        rounds=rounds,
    )


# ---------------------------------------------------------------- LT family


def run_lt_batch(
    graph: CompiledGraph,
    seeds: Sequence[int],
    rng: np.random.Generator,
    count: int,
    opinion: str = "initial",
) -> BatchOutcome:
    """Batch kernel for LT-style diffusion (threshold accumulation).

    ``opinion`` selects the opinion layer: ``"initial"`` (plain LT),
    ``"mean"`` (OC — average the final opinions of active in-neighbours) or
    ``"interaction"`` (OI under the LT first layer — each active
    in-neighbour's contribution is sign-flipped with probability
    ``1 - phi``).
    """
    count = _validate_count(count)
    validated = validate_seed_indices(graph, seeds)
    n = graph.number_of_nodes
    seed_array = np.asarray(validated, dtype=np.int64)
    active = np.zeros((count, n), dtype=bool)
    opinions = np.zeros((count, n), dtype=np.float64)
    rounds = np.zeros(count, dtype=np.int64)
    accumulated = np.zeros((count, n), dtype=np.float64)
    thresholds = draw_threshold_matrix(graph, rng, count)
    weights = resolve_out_lt_weights(graph)
    scratch = np.empty(count * n, dtype=np.int32)

    if seed_array.size:
        active[:, seed_array] = True
        opinions[:, seed_array] = graph.opinions[seed_array]

    frontier_cas, frontier_node = _seed_frontier(seed_array, count)
    while frontier_cas.size:
        _count_rounds(rounds, frontier_cas)
        positions, owner = _expand_csr(graph.out_indptr, frontier_node)
        if positions.size == 0:
            break
        cascades = frontier_cas[owner]
        targets = graph.out_indices[positions]
        keep = ~active[cascades, targets]
        cascades = cascades[keep]
        targets = targets[keep]
        positions = positions[keep]
        if cascades.size == 0:
            break

        # Segment-sum the pushed weights per touched (cascade, target) pair:
        # dedup the flat keys without sorting, compress every attempt onto its
        # representative with a searchsorted, and bincount the weights — much
        # faster than an unbuffered ``np.add.at`` scatter-add.
        keys = cascades * n + targets
        representatives = _dedup_first(keys, scratch)
        compact = np.searchsorted(representatives, scratch[keys])
        pushed = np.bincount(
            compact, weights=weights[positions], minlength=representatives.size
        )
        touch_cas = cascades[representatives]
        touch_tgt = targets[representatives]
        accumulated[touch_cas, touch_tgt] += pushed

        ready = accumulated[touch_cas, touch_tgt] >= thresholds[touch_cas, touch_tgt]
        win_cas = touch_cas[ready]
        win_tgt = touch_tgt[ready]
        if win_cas.size == 0:
            frontier_cas, frontier_node = _EMPTY, _EMPTY
            continue

        if opinion == "initial":
            opinions[win_cas, win_tgt] = graph.opinions[win_tgt]
        else:
            neighbour_term = _active_in_neighbour_mean(
                graph, active, opinions, win_cas, win_tgt, rng,
                signed=(opinion == "interaction"),
            )
            opinions[win_cas, win_tgt] = (
                graph.opinions[win_tgt] + neighbour_term
            ) / 2.0
        active[win_cas, win_tgt] = True
        frontier_cas, frontier_node = win_cas, win_tgt

    return BatchOutcome(
        seeds=validated, active=active, opinions=opinions, rounds=rounds
    )


def _active_in_neighbour_mean(
    graph: CompiledGraph,
    active: np.ndarray,
    opinions: np.ndarray,
    win_cas: np.ndarray,
    win_tgt: np.ndarray,
    rng: np.random.Generator,
    signed: bool,
) -> np.ndarray:
    """Mean (optionally sign-flipped) opinion of active in-neighbours.

    For every newly activated ``(cascade, target)`` pair, averages the final
    opinions of the target's in-neighbours that are already active in that
    cascade; with ``signed=True`` each contribution is negated with
    probability ``1 - phi_(u,v)`` (the OI disagreement draw).
    """
    positions, owner = _expand_csr(graph.in_indptr, win_tgt)
    if positions.size == 0:
        return np.zeros(win_cas.size, dtype=np.float64)
    sources = graph.in_indices[positions]
    cascades = win_cas[owner]
    is_active = active[cascades, sources]
    owner = owner[is_active]
    contributions = opinions[cascades[is_active], sources[is_active]]
    if signed:
        agrees = rng.random(owner.size) < graph.in_interaction[positions[is_active]]
        contributions = np.where(agrees, contributions, -contributions)
    sums = np.bincount(owner, weights=contributions, minlength=win_cas.size)
    counts = np.bincount(owner, minlength=win_cas.size)
    return sums / np.maximum(counts, 1.0)


# ---------------------------------------------------------------- live edge


def run_live_edge_batch(
    graph: CompiledGraph,
    seeds: Sequence[int],
    rng: np.random.Generator,
    count: int,
) -> BatchOutcome:
    """Batch kernel for the live-edge formulation of LT.

    Samples every cascade's live in-edge choices in one vectorized pass (a
    single uniform draw per ``(cascade, node)`` resolved against the global
    per-segment cumulative-weight array), then propagates reachability with
    whole-matrix gather steps.
    """
    count = _validate_count(count)
    validated = validate_seed_indices(graph, seeds)
    n = graph.number_of_nodes
    seed_array = np.asarray(validated, dtype=np.int64)
    active = np.zeros((count, n), dtype=bool)
    rounds = np.zeros(count, dtype=np.int64)
    if seed_array.size:
        active[:, seed_array] = True

    parents = _sample_live_parent_matrix(graph, rng, count)

    has_parent = parents >= 0
    safe_parent = np.where(has_parent, parents, 0)
    row = np.arange(count)[:, None]
    frontier_alive = np.ones(count, dtype=bool) if seed_array.size else np.zeros(
        count, dtype=bool
    )
    while frontier_alive.any():
        rounds[frontier_alive] += 1
        newly = has_parent & active[row, safe_parent] & ~active
        active |= newly
        frontier_alive &= newly.any(axis=1)

    opinions = np.where(active, graph.opinions[None, :], 0.0)
    return BatchOutcome(
        seeds=validated, active=active, opinions=opinions, rounds=rounds
    )


def _sample_live_parent_matrix(
    graph: CompiledGraph, rng: np.random.Generator, count: int
) -> np.ndarray:
    """``(count, n)`` live parent of every node per cascade (``-1`` = none)."""
    from repro.diffusion.linear_threshold import resolve_lt_weights

    n = graph.number_of_nodes
    parents = np.full((count, n), -1, dtype=np.int64)
    in_degrees = np.diff(graph.in_indptr)
    candidates = np.flatnonzero(in_degrees > 0)
    if candidates.size == 0:
        return parents

    weights = resolve_lt_weights(graph)
    cumulative = np.cumsum(weights)
    starts = graph.in_indptr[:-1]
    prefix = cumulative[starts] - weights[starts]
    within = cumulative - np.repeat(prefix, in_degrees)
    totals = np.zeros(n, dtype=np.float64)
    totals[candidates] = within[graph.in_indptr[1:][candidates] - 1]

    # Shift each node's in-segment of the cumulative array into its own
    # disjoint value band so one global searchsorted resolves every draw.
    band = float(max(2.0, np.ceil(within.max()) + 1.0)) if within.size else 2.0
    segment_of_edge = np.repeat(np.arange(n), in_degrees)
    shifted = within + band * segment_of_edge

    draws = rng.random((count, candidates.size))
    has_live = draws < totals[candidates][None, :]
    cas_idx, cand_idx = np.nonzero(has_live)
    if cas_idx.size:
        nodes = candidates[cand_idx]
        queries = draws[cas_idx, cand_idx] + band * nodes
        edge_positions = np.searchsorted(shifted, queries, side="right")
        parents[cas_idx, nodes] = graph.in_indices[edge_positions]
    return parents
