"""The Weighted Cascade (WC) model.

WC is the IC model with the activation probability of every edge ``(u, v)``
fixed to ``1 / in_degree(v)`` (Sec. 3.3 of the paper).  The probabilities are
derived from the compiled graph's in-degrees at simulation time, so the same
graph object can be used under IC and WC without re-annotation.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.batch import wc_out_probabilities
from repro.diffusion.independent_cascade import IndependentCascadeModel
from repro.graphs.digraph import CompiledGraph

# WC probabilities feed the RR-set sampler; opt this module into the
# REP011 determinism-taint zone (see repro.devtools.flow).
__repro_deterministic__ = True


class WeightedCascadeModel(IndependentCascadeModel):
    """IC with ``p_(u,v) = 1 / in_degree(v)``."""

    name = "wc"

    def __init__(self) -> None:
        # Hold the graph itself, not id(graph): ids are recycled after GC,
        # so an id-keyed cache can serve stale probabilities to a new graph
        # allocated at the same address.
        self._cache_graph: CompiledGraph | None = None
        self._cache_probabilities: np.ndarray | None = None

    def edge_probabilities(self, graph: CompiledGraph, node: int) -> np.ndarray:
        probabilities = self._probabilities_for(graph)
        return probabilities[graph.out_indptr[node]:graph.out_indptr[node + 1]]

    def batch_edge_probabilities(self, graph: CompiledGraph) -> np.ndarray:
        return self._probabilities_for(graph)

    def _probabilities_for(self, graph: CompiledGraph) -> np.ndarray:
        """Edge-aligned WC probabilities, cached per compiled graph."""
        if self._cache_graph is graph and self._cache_probabilities is not None:
            return self._cache_probabilities
        probabilities = wc_out_probabilities(graph)
        self._cache_graph = graph
        self._cache_probabilities = probabilities
        return probabilities
