"""The Weighted Cascade (WC) model.

WC is the IC model with the activation probability of every edge ``(u, v)``
fixed to ``1 / in_degree(v)`` (Sec. 3.3 of the paper).  The probabilities are
derived from the compiled graph's in-degrees at simulation time, so the same
graph object can be used under IC and WC without re-annotation.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.batch import wc_out_probabilities
from repro.diffusion.independent_cascade import IndependentCascadeModel
from repro.graphs.digraph import CompiledGraph


class WeightedCascadeModel(IndependentCascadeModel):
    """IC with ``p_(u,v) = 1 / in_degree(v)``."""

    name = "wc"

    def __init__(self) -> None:
        self._cache_graph_id: int | None = None
        self._cache_probabilities: np.ndarray | None = None

    def edge_probabilities(self, graph: CompiledGraph, node: int) -> np.ndarray:
        probabilities = self._probabilities_for(graph)
        return probabilities[graph.out_indptr[node]:graph.out_indptr[node + 1]]

    def batch_edge_probabilities(self, graph: CompiledGraph) -> np.ndarray:
        return self._probabilities_for(graph)

    def _probabilities_for(self, graph: CompiledGraph) -> np.ndarray:
        """Edge-aligned WC probabilities, cached per compiled graph."""
        if self._cache_graph_id == id(graph) and self._cache_probabilities is not None:
            return self._cache_probabilities
        probabilities = wc_out_probabilities(graph)
        self._cache_graph_id = id(graph)
        self._cache_probabilities = probabilities
        return probabilities
