"""The IC-N model (Chen et al., SDM 2011) — negative-opinion baseline.

IC-N extends IC with a single global *quality factor* ``q``:

* a node activated by a *positive* neighbour becomes positive with
  probability ``q`` and negative with probability ``1 - q``;
* a node activated by a *negative* neighbour always becomes negative
  (negativity dominance);
* seeds start positive, but turn negative with probability ``1 - q`` as well.

The paper criticises IC-N for ignoring personal opinions and for its rigid
propagation of negativity (Sec. 1, limitations 1-2); it is implemented here as
one of the two prior opinion-aware baselines.  Final opinions are reported as
``+1`` / ``-1`` so the opinion-spread definitions apply unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.diffusion.base import (
    BatchOutcome,
    DiffusionModel,
    DiffusionOutcome,
    validate_seed_indices,
)
from repro.diffusion.batch import run_ic_batch
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph


class ICNModel(DiffusionModel):
    """IC with negative opinion emergence controlled by a quality factor."""

    name = "icn"
    opinion_aware = True

    def __init__(self, quality_factor: float = 0.9) -> None:
        if not 0.0 <= quality_factor <= 1.0:
            raise ConfigurationError(
                f"quality_factor must lie in [0, 1], got {quality_factor}"
            )
        self.quality_factor = quality_factor

    def __repr__(self) -> str:
        return f"ICNModel(quality_factor={self.quality_factor})"

    def simulate_batch(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
        count: int,
    ) -> BatchOutcome:
        return run_ic_batch(
            graph,
            seeds,
            rng,
            count,
            graph.out_probability,
            opinion="polarity",
            quality_factor=self.quality_factor,
        )

    def simulate(
        self,
        graph: CompiledGraph,
        seeds: Sequence[int],
        rng: np.random.Generator,
    ) -> DiffusionOutcome:
        seeds = validate_seed_indices(graph, seeds)
        outcome = DiffusionOutcome(seeds=seeds)
        n = graph.number_of_nodes
        active = np.zeros(n, dtype=bool)
        # +1 positive, -1 negative once active.
        polarity = np.zeros(n, dtype=np.float64)

        frontier: deque[int] = deque()
        for seed in seeds:
            active[seed] = True
            sign = 1.0 if rng.random() < self.quality_factor else -1.0
            polarity[seed] = sign
            outcome.activated.append(seed)
            outcome.final_opinions[seed] = sign
            frontier.append(seed)

        rounds = 0
        while frontier:
            rounds += 1
            next_frontier: deque[int] = deque()
            while frontier:
                node = frontier.popleft()
                neighbors = graph.out_neighbors(node)
                if neighbors.size == 0:
                    continue
                probabilities = graph.out_probabilities(node)
                draws = rng.random(neighbors.size)
                for position in np.flatnonzero(draws < probabilities):
                    target = int(neighbors[position])
                    if active[target]:
                        continue
                    if polarity[node] < 0:
                        sign = -1.0  # negativity always propagates
                    else:
                        sign = 1.0 if rng.random() < self.quality_factor else -1.0
                    active[target] = True
                    polarity[target] = sign
                    outcome.activated.append(target)
                    outcome.final_opinions[target] = sign
                    next_frontier.append(target)
            frontier = next_frontier
        outcome.rounds = rounds
        return outcome
