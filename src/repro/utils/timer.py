"""Small wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from repro.exceptions import LifecycleError

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    The timer can be started and stopped repeatedly; :attr:`elapsed` reports
    the total time spent inside start/stop pairs.  It also works as a context
    manager::

        timer = Timer()
        with timer:
            run_expensive_step()
        print(timer.elapsed)
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise LifecycleError("timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise LifecycleError("timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        # Idempotent on exit: a manual stop() inside the block is legal and
        # must not turn the context manager's own exit into a
        # LifecycleError (which would also mask any in-flight exception).
        if self.running:
            self.stop()


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a one-shot :class:`Timer`."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()


def time_call(func: Callable[..., T], *args: object, **kwargs: object) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
