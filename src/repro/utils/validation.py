"""Parameter validation helpers shared by models, algorithms and datasets.

The helpers raise :class:`repro.exceptions.ConfigurationError` (a ``ValueError``
subclass) with a message naming the offending parameter, so user-facing APIs
fail fast with actionable errors instead of propagating obscure numpy errors
from deep inside a simulation.
"""

from __future__ import annotations

from numbers import Real
from typing import Type, TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")


def check_type(name: str, value: T, expected: Type | tuple[Type, ...]) -> T:
    """Ensure ``value`` is an instance of ``expected``; return it unchanged."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: Real) -> Real:
    """Ensure ``value`` is strictly positive."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: Real) -> Real:
    """Ensure ``value`` is zero or positive."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: Real) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_in_range(name: str, value: Real, low: float, high: float) -> float:
    """Ensure ``low <= value <= high`` and return it as a ``float``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_budget(name: str, budget: int, population: int) -> int:
    """Ensure a seed budget is a positive integer not exceeding ``population``."""
    if isinstance(budget, bool) or not isinstance(budget, int):
        raise ConfigurationError(f"{name} must be an int, got {type(budget).__name__}")
    if budget <= 0:
        raise ConfigurationError(f"{name} must be >= 1, got {budget}")
    if budget > population:
        from repro.exceptions import BudgetError

        raise BudgetError(budget, population)
    return budget
