"""Shared utilities: RNG management, timing, memory tracking and validation."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rng
from repro.utils.timer import Timer, timed
from repro.utils.memory import MemoryTracker, peak_memory_mb, peak_rss_mb
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "timed",
    "MemoryTracker",
    "peak_memory_mb",
    "peak_rss_mb",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
