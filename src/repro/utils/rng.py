"""Random-number-generator plumbing.

Every stochastic component in the library (diffusion simulation, dataset
synthesis, sampling algorithms) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
those three spellings into a single ``Generator`` so results are reproducible
whenever a seed is supplied.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError, RNGError

# Public alias used in type hints across the package.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for non-deterministic behaviour, an ``int`` for a fresh
        deterministic generator, or an existing ``Generator`` which is
        returned unchanged.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise RNGError(
        f"seed must be None, an int or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent child generators.

    Used by the Monte-Carlo engine so that simulation batches can be computed
    independently (and, if desired, in parallel) while keeping the overall run
    reproducible.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
