"""Memory measurement helpers.

The paper's scalability story (Figs. 5h, 6i, 6j, 7j and Tables 3-4) is about
the *additional* memory an algorithm allocates over and above the graph it
operates on.  :class:`MemoryTracker` measures exactly that with
:mod:`tracemalloc`, which tracks Python-level allocations and is therefore
portable across platforms (unlike RSS-based measurements).
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.exceptions import LifecycleError

T = TypeVar("T")

_BYTES_PER_MB = 1024.0 * 1024.0


@dataclass
class MemorySnapshot:
    """Peak and current traced allocation sizes, in megabytes."""

    current_mb: float
    peak_mb: float


class MemoryTracker:
    """Context manager measuring peak Python allocations inside its block.

    Nested usage is supported: the tracker records the delta between the peak
    during the block and the traced size when the block started, which is the
    quantity reported as "ExecutionMemory" in the paper's stacked bar charts.
    """

    def __init__(self) -> None:
        self.snapshot: MemorySnapshot | None = None
        self._was_tracing = False
        self._baseline = 0

    def __enter__(self) -> "MemoryTracker":
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        self._baseline, _ = tracemalloc.get_traced_memory()
        return self

    def __exit__(self, *exc_info: object) -> None:
        current, peak = tracemalloc.get_traced_memory()
        self.snapshot = MemorySnapshot(
            current_mb=max(0.0, (current - self._baseline) / _BYTES_PER_MB),
            peak_mb=max(0.0, (peak - self._baseline) / _BYTES_PER_MB),
        )
        if not self._was_tracing:
            tracemalloc.stop()

    @property
    def peak_mb(self) -> float:
        """Peak additional memory allocated inside the block, in MB."""
        if self.snapshot is None:
            raise LifecycleError("MemoryTracker has not finished measuring yet")
        return self.snapshot.peak_mb


def peak_memory_mb(func: Callable[..., T], *args: object, **kwargs: object) -> tuple[T, float]:
    """Call ``func`` and return ``(result, peak_additional_memory_mb)``."""
    with MemoryTracker() as tracker:
        result = func(*args, **kwargs)
    return result, tracker.peak_mb


def peak_rss_mb() -> float | None:
    """Process-lifetime peak resident set size in MB, or ``None``.

    Read from ``getrusage`` so it costs nothing per sample — unlike
    :class:`MemoryTracker` it sees native (numpy) allocations, which is
    what a telemetry snapshot should report.  ``None`` on platforms
    without :mod:`resource`; the unit of ``ru_maxrss`` is KB on Linux
    and bytes on macOS.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover — non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = _BYTES_PER_MB if sys.platform == "darwin" else 1024.0
    return float(peak) / divisor
