"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can distinguish library failures from programming errors with a single
``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised for structural problems with graphs (bad nodes, bad edges)."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class ConfigurationError(ReproError, ValueError):
    """Raised when a model, algorithm or problem receives invalid parameters."""


class MissingAnnotationError(ReproError, KeyError):
    """Raised when an opinion-aware component runs on an unannotated graph.

    Opinion-aware diffusion (the OI model and its baselines) requires node
    opinions and edge interaction probabilities; this error explains which of
    the two annotations is missing.
    """

    def __init__(self, what: str) -> None:
        super().__init__(
            f"graph is missing the {what!r} annotation; call "
            "repro.opinion.annotate_opinions() or set it explicitly"
        )
        self.what = what


class DatasetError(ReproError, ValueError):
    """Raised when a named dataset cannot be located or generated."""


class AlgorithmError(ReproError, RuntimeError):
    """Raised when a seed-selection algorithm fails to produce a seed set."""


class ServingError(ReproError, RuntimeError):
    """Raised by the serving layer (artifact store, influence index, service)."""


class IndexArtifactError(ServingError):
    """Raised when a persisted influence-index artifact is malformed."""


class IndexMismatchError(ServingError):
    """Raised when an index artifact's provenance doesn't match the graph.

    An influence index is only valid for the exact graph it was sampled on;
    serving a stale index against a modified graph would silently return
    wrong seeds, so the mismatch (content fingerprint, model, node count) is
    rejected instead.
    """


class SpecError(ConfigurationError):
    """Raised when a declarative experiment spec fails validation.

    Messages are schema-style: they lead with the dotted path of the
    offending field (``experiment.graph.scale: must be > 0, got -1``) so a
    spec author can locate the problem in a JSON document directly.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = path


class BudgetError(ConfigurationError):
    """Raised when the seed budget ``k`` is not satisfiable for the graph."""

    def __init__(self, budget: int, population: int) -> None:
        super().__init__(
            f"budget k={budget} exceeds the number of selectable nodes "
            f"({population})"
        )
        self.budget = budget
        self.population = population
