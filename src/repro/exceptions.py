"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can distinguish library failures from programming errors with a single
``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised for structural problems with graphs (bad nodes, bad edges)."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class GraphConstructionError(GraphError, ValueError):
    """Raised when graph-building input (edge lists, CSR arrays) is malformed.

    Keeps ``ValueError`` as a base because builder callers historically
    caught that.
    """


class ConfigurationError(ReproError, ValueError):
    """Raised when a model, algorithm or problem receives invalid parameters."""


class RNGError(ReproError, TypeError):
    """Raised when a seed argument is not one of the accepted spellings.

    ``TypeError`` stays a base: passing a float (or a foreign RNG object)
    where ``None | int | numpy.random.Generator`` is expected is a typing
    mistake, and callers may reasonably catch it as such.
    """


class LifecycleError(ReproError, RuntimeError):
    """Raised when a stateful utility is used out of order.

    Covers wrong-state transitions such as starting an already-running
    timer or reading a measurement that has not finished; ``RuntimeError``
    stays a base for existing callers.
    """


class SketchError(ReproError, ValueError):
    """Raised for structural problems in an RR-sketch collection.

    Malformed CSR membership arrays, inconsistent ``indptr`` boundaries
    and the like; ``ValueError`` stays a base for existing callers.
    """


class SketchIndexError(ReproError, IndexError):
    """Raised when an RR-set index is outside the collection's range."""


class MissingAnnotationError(ReproError, KeyError):
    """Raised when an opinion-aware component runs on an unannotated graph.

    Opinion-aware diffusion (the OI model and its baselines) requires node
    opinions and edge interaction probabilities; this error explains which of
    the two annotations is missing.
    """

    def __init__(self, what: str) -> None:
        super().__init__(
            f"graph is missing the {what!r} annotation; call "
            "repro.opinion.annotate_opinions() or set it explicitly"
        )
        self.what = what


class DatasetError(ReproError, ValueError):
    """Raised when a named dataset cannot be located or generated."""


class AlgorithmError(ReproError, RuntimeError):
    """Raised when a seed-selection algorithm fails to produce a seed set."""


class ServingError(ReproError, RuntimeError):
    """Raised by the serving layer (artifact store, influence index, service)."""


class IndexArtifactError(ServingError):
    """Raised when a persisted influence-index artifact is malformed."""


class ArtifactCorruptError(IndexArtifactError):
    """Raised when an artifact's payload fails its sha256 checksum.

    Distinct from the parent so the serving layer can quarantine the file
    (rename it ``.corrupt``) and transparently rebuild, while a merely
    *malformed* file (wrong format, foreign schema) is reported as-is.
    ``metadata`` carries the provenance record when it was still readable —
    quarantine-and-rebuild uses it to recover the model and theta.
    """

    def __init__(self, path: object, detail: str, metadata: object = None) -> None:
        super().__init__(
            f"artifact {path} is corrupt: {detail}; quarantine it (rename to "
            f"*.corrupt) and rebuild with `repro index build`"
        )
        self.path = path
        self.metadata = metadata


class DeadlineExceeded(ServingError):
    """Raised when a request's absolute time budget expires mid-flight.

    ``stage`` names the pipeline step that observed the expiry (``admission``,
    ``build``, ``sample``, ``select``, ``evaluate``...), so a caller can tell
    an overloaded build queue from a slow query.
    """

    def __init__(self, stage: str, budget_seconds: float, overrun_seconds: float) -> None:
        super().__init__(
            f"deadline of {budget_seconds * 1000.0:.0f}ms exceeded by "
            f"{overrun_seconds * 1000.0:.0f}ms at stage {stage!r}"
        )
        self.stage = stage
        self.budget_seconds = budget_seconds
        self.overrun_seconds = overrun_seconds


class CircuitOpenError(ServingError):
    """Raised when a circuit breaker rejects work for a failing index.

    Repeated build/load failures trip the breaker; while it is open the
    service fails fast (or degrades, if the caller opted in) instead of
    hammering a backend that just failed.  The breaker half-opens on a timer
    and lets one probe through.
    """

    def __init__(self, subject: str, retry_after_seconds: float) -> None:
        super().__init__(
            f"circuit breaker for {subject} is open; retry in "
            f"~{max(retry_after_seconds, 0.0):.1f}s or request a degraded answer"
        )
        self.subject = subject
        self.retry_after_seconds = retry_after_seconds


class ServiceOverloadedError(ServingError):
    """Raised when admission control sheds a request (queue over the limit).

    Shedding is deliberate backpressure, not a failure of the shed request:
    the caller should retry later or route elsewhere.  Degraded answers are
    *not* substituted for shed requests — an overloaded service must get
    cheaper, not busier.
    """

    def __init__(self, inflight: int, max_queue: int) -> None:
        super().__init__(
            f"service is at its admission limit ({inflight} in flight, "
            f"max_queue={max_queue}); request shed — retry with backoff"
        )
        self.inflight = inflight
        self.max_queue = max_queue


class IndexMismatchError(ServingError):
    """Raised when an index artifact's provenance doesn't match the graph.

    An influence index is only valid for the exact graph it was sampled on;
    serving a stale index against a modified graph would silently return
    wrong seeds, so the mismatch (content fingerprint, model, node count) is
    rejected instead.
    """


class ExecutionError(ReproError, RuntimeError):
    """Raised by the supervised execution runtime (:mod:`repro.runtime`).

    Covers the parallel build machinery: worker pools, crash supervision
    and checkpoint/resume.  ``RuntimeError`` stays a base so callers that
    treat pool failures as generic runtime faults keep working.
    """


class WorkerCrashError(ExecutionError):
    """Raised when worker crashes exhaust the pool's respawn budget.

    Only reachable when the in-process fallback is disabled — by default a
    pool that cannot keep workers alive finishes the remaining blocks
    inline instead of failing the build.
    """

    def __init__(self, name: str, crashes: int, budget: int) -> None:
        super().__init__(
            f"supervised pool {name!r} lost {crashes} worker(s), exhausting "
            f"its respawn budget of {budget} with in-process fallback "
            "disabled"
        )
        self.name = name
        self.crashes = crashes
        self.budget = budget


class TaskFailedError(ExecutionError):
    """Raised when a task raises a real exception inside a worker.

    Distinct from a worker *crash* (process death), which is retried via
    deterministic replay: an in-task exception is itself deterministic —
    the replay invariant guarantees a retry would raise it again — so the
    pool surfaces it immediately instead of burning the respawn budget.
    """

    def __init__(self, label: str, detail: str) -> None:
        super().__init__(f"task {label} failed in a worker: {detail}")
        self.label = label
        self.detail = detail


class CheckpointError(ExecutionError):
    """Raised when a checkpoint manifest does not match the requested build.

    A checkpoint is only resumable into the *exact* build that wrote it
    (same graph fingerprint, model, engine seed, block size and numpy
    stream); resuming across any of those would silently break the
    resumed == uninterrupted guarantee, so the mismatch is refused.
    """


class ExecutionInterrupted(ExecutionError):
    """Raised when a build stops at a clean block boundary after a signal.

    SIGINT/SIGTERM handling requests a *cooperative* stop: the current
    block finishes, the partial state is checkpointable, and this error
    reports how far the build got so the CLI can print a resume command.
    """

    def __init__(self, stage: str, completed: int) -> None:
        super().__init__(
            f"interrupted at stage {stage!r} after {completed} completed "
            "unit(s); partial progress was kept for --resume"
        )
        self.stage = stage
        self.completed = completed


class SpecError(ConfigurationError):
    """Raised when a declarative experiment spec fails validation.

    Messages are schema-style: they lead with the dotted path of the
    offending field (``experiment.graph.scale: must be > 0, got -1``) so a
    spec author can locate the problem in a JSON document directly.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = path


class LintError(ReproError, RuntimeError):
    """Raised by :mod:`repro.devtools` for unusable lint input.

    Covers unparsable source, malformed ``# repro: noqa[...]`` comments,
    bad baselines and unknown rule codes — *not* rule violations, which
    are reported as findings, never exceptions.
    """


class LockOrderError(ReproError, RuntimeError):
    """Raised when the runtime lock checker records an ordering violation.

    The serving layer declares a total acquisition order
    (:data:`repro.devtools.lockcheck.LOCK_HIERARCHY`); an edge against
    that order, or any cycle in the recorded acquisition graph, is a
    latent deadlock even if the run itself did not hang.
    """


class BudgetError(ConfigurationError):
    """Raised when the seed budget ``k`` is not satisfiable for the graph."""

    def __init__(self, budget: int, population: int) -> None:
        super().__init__(
            f"budget k={budget} exceeds the number of selectable nodes "
            f"({population})"
        )
        self.budget = budget
        self.population = population
