"""repro — a reproduction of "Holistic Influence Maximization: Combining
Scalability and Efficiency with Opinion-Aware Models" (SIGMOD 2016).

The package provides:

* the **OI** (Opinion-cum-Interaction) diffusion model plus the classical
  IC/WC/LT models and the prior opinion-aware baselines IC-N and OC;
* the **MEO** problem (maximise the effective opinion spread) and the
  classical IM problem behind a single :class:`InfluenceMaximizer` facade;
* the paper's **EaSyIM** and **OSIM** algorithms alongside a full suite of
  competitors (GREEDY/CELF/CELF++, TIM+/IMM, IRIE, SIMPATH, degree and
  PageRank heuristics);
* synthetic stand-ins for the paper's datasets and case studies (Table 2
  graphs, the Twitter topic pipeline, the PAKDD churn pipeline);
* a benchmark harness regenerating every table and figure of the evaluation.

Quickstart — the declarative experiment API::

    import repro

    spec = repro.ExperimentSpec(
        graph=repro.GraphSpec(dataset="nethept", seed=7, annotate=True,
                              opinion="normal"),
        model=repro.ModelSpec(name="oi-ic"),
        algorithm=repro.AlgorithmSpec(name="osim"),
        budget=10,
        evaluation=repro.EvalSpec(objective="effective-opinion"),
    )
    result = repro.run_experiment(spec)
    print(result.seeds, result.value)
    print(result.to_json())          # full provenance, repro/run-result@1

The imperative facade (:class:`InfluenceMaximizer`) remains available for
programmatic use; every spec round-trips through JSON, so the same
experiment can be checked in as a file and executed with ``repro-im run``.
"""

from repro.exceptions import (
    AlgorithmError,
    BudgetError,
    ConfigurationError,
    DatasetError,
    GraphConstructionError,
    GraphError,
    IndexArtifactError,
    IndexMismatchError,
    LifecycleError,
    LintError,
    LockOrderError,
    MissingAnnotationError,
    ReproError,
    RNGError,
    ServingError,
    SketchError,
    SketchIndexError,
    SpecError,
)
from repro.graphs import (
    CompiledGraph,
    DiGraph,
    compute_stats,
    figure1_example_graph,
    from_edge_list,
    graph_fingerprint,
    make_bidirectional,
    read_edge_list,
    write_edge_list,
)
from repro.diffusion import (
    BatchOutcome,
    MonteCarloEngine,
    available_models,
    expected_effective_opinion_spread,
    expected_opinion_spread,
    expected_spread,
    get_model,
    simulate_batch,
)
from repro.algorithms import (
    AlgorithmInfo,
    algorithm_capabilities,
    algorithm_info,
    available_algorithms,
    get_algorithm,
)
from repro.opinion import annotate_interactions, annotate_opinions
from repro.opinion.annotate import annotate_graph
from repro.datasets import available_datasets, load_dataset
from repro.core import (
    IMProblem,
    InfluenceMaximizer,
    MaximizationResult,
    MEOProblem,
    compare_seed_sets,
    evaluate_seed_prefixes,
)
from repro.core.evaluation import (
    SeedSetEvaluation,
    index_evaluate_seed_prefixes,
    sketch_evaluate_seed_prefixes,
)
from repro.serving import InfluenceIndex, InfluenceService
from repro.scoring import ScoreEngine
from repro.specs import (
    AlgorithmSpec,
    EstimatorSpec,
    EvalSpec,
    ExperimentSpec,
    GraphSpec,
    ModelSpec,
    load_experiment_spec,
)
from repro.api import (
    IndexEstimator,
    MonteCarloEstimator,
    RunResult,
    ScoreEstimator,
    SketchEstimator,
    SpreadEstimator,
    build_estimator,
    build_selector,
    estimator_capabilities,
    run_experiment,
)
from repro.telemetry import (
    MetricsRegistry,
    MetricsServer,
    TraceRecorder,
    default_registry,
    recording,
    render_prometheus,
    set_default_registry,
    span,
    use_registry,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "GraphConstructionError",
    "ConfigurationError",
    "RNGError",
    "LifecycleError",
    "LintError",
    "LockOrderError",
    "SketchError",
    "SketchIndexError",
    "MissingAnnotationError",
    "DatasetError",
    "AlgorithmError",
    "BudgetError",
    "ServingError",
    "IndexArtifactError",
    "IndexMismatchError",
    "SpecError",
    # graphs
    "DiGraph",
    "CompiledGraph",
    "from_edge_list",
    "make_bidirectional",
    "read_edge_list",
    "write_edge_list",
    "compute_stats",
    "figure1_example_graph",
    "graph_fingerprint",
    # diffusion
    "get_model",
    "available_models",
    "MonteCarloEngine",
    "BatchOutcome",
    "simulate_batch",
    "expected_spread",
    "expected_opinion_spread",
    "expected_effective_opinion_spread",
    # algorithms
    "get_algorithm",
    "available_algorithms",
    "AlgorithmInfo",
    "algorithm_info",
    "algorithm_capabilities",
    # opinion annotation
    "annotate_opinions",
    "annotate_interactions",
    "annotate_graph",
    # datasets
    "load_dataset",
    "available_datasets",
    # core API
    "IMProblem",
    "MEOProblem",
    "InfluenceMaximizer",
    "MaximizationResult",
    "evaluate_seed_prefixes",
    "compare_seed_sets",
    "SeedSetEvaluation",
    "sketch_evaluate_seed_prefixes",
    "index_evaluate_seed_prefixes",
    # serving
    "InfluenceIndex",
    "InfluenceService",
    # scoring
    "ScoreEngine",
    # experiment specs
    "ExperimentSpec",
    "GraphSpec",
    "ModelSpec",
    "AlgorithmSpec",
    "EstimatorSpec",
    "EvalSpec",
    "load_experiment_spec",
    # unified experiment API
    "run_experiment",
    "RunResult",
    "SpreadEstimator",
    "build_estimator",
    "build_selector",
    "estimator_capabilities",
    "MonteCarloEstimator",
    "SketchEstimator",
    "IndexEstimator",
    "ScoreEstimator",
    # telemetry
    "MetricsRegistry",
    "MetricsServer",
    "TraceRecorder",
    "default_registry",
    "recording",
    "render_prometheus",
    "set_default_registry",
    "span",
    "use_registry",
]
