"""repro — a reproduction of "Holistic Influence Maximization: Combining
Scalability and Efficiency with Opinion-Aware Models" (SIGMOD 2016).

The package provides:

* the **OI** (Opinion-cum-Interaction) diffusion model plus the classical
  IC/WC/LT models and the prior opinion-aware baselines IC-N and OC;
* the **MEO** problem (maximise the effective opinion spread) and the
  classical IM problem behind a single :class:`InfluenceMaximizer` facade;
* the paper's **EaSyIM** and **OSIM** algorithms alongside a full suite of
  competitors (GREEDY/CELF/CELF++, TIM+/IMM, IRIE, SIMPATH, degree and
  PageRank heuristics);
* synthetic stand-ins for the paper's datasets and case studies (Table 2
  graphs, the Twitter topic pipeline, the PAKDD churn pipeline);
* a benchmark harness regenerating every table and figure of the evaluation.

Quickstart::

    import repro

    graph = repro.load_dataset("nethept", seed=7)
    repro.annotate_graph(graph, opinion="normal", interaction="uniform", seed=7)

    problem = repro.MEOProblem(graph, budget=10, model="oi-ic", penalty=1.0)
    result = repro.InfluenceMaximizer(problem, algorithm="osim").run()
    print(result.seeds, result.expected_spread)
"""

from repro.exceptions import (
    AlgorithmError,
    BudgetError,
    ConfigurationError,
    DatasetError,
    GraphError,
    MissingAnnotationError,
    ReproError,
)
from repro.graphs import (
    CompiledGraph,
    DiGraph,
    compute_stats,
    figure1_example_graph,
    from_edge_list,
    graph_fingerprint,
    make_bidirectional,
    read_edge_list,
    write_edge_list,
)
from repro.diffusion import (
    BatchOutcome,
    MonteCarloEngine,
    available_models,
    expected_effective_opinion_spread,
    expected_opinion_spread,
    expected_spread,
    get_model,
    simulate_batch,
)
from repro.algorithms import available_algorithms, get_algorithm
from repro.opinion import annotate_interactions, annotate_opinions
from repro.opinion.annotate import annotate_graph
from repro.datasets import available_datasets, load_dataset
from repro.core import (
    IMProblem,
    InfluenceMaximizer,
    MaximizationResult,
    MEOProblem,
    compare_seed_sets,
    evaluate_seed_prefixes,
)
from repro.serving import InfluenceIndex, InfluenceService
from repro.scoring import ScoreEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "ConfigurationError",
    "MissingAnnotationError",
    "DatasetError",
    "AlgorithmError",
    "BudgetError",
    # graphs
    "DiGraph",
    "CompiledGraph",
    "from_edge_list",
    "make_bidirectional",
    "read_edge_list",
    "write_edge_list",
    "compute_stats",
    "figure1_example_graph",
    "graph_fingerprint",
    # diffusion
    "get_model",
    "available_models",
    "MonteCarloEngine",
    "BatchOutcome",
    "simulate_batch",
    "expected_spread",
    "expected_opinion_spread",
    "expected_effective_opinion_spread",
    # algorithms
    "get_algorithm",
    "available_algorithms",
    # opinion annotation
    "annotate_opinions",
    "annotate_interactions",
    "annotate_graph",
    # datasets
    "load_dataset",
    "available_datasets",
    # core API
    "IMProblem",
    "MEOProblem",
    "InfluenceMaximizer",
    "MaximizationResult",
    "evaluate_seed_prefixes",
    "compare_seed_sets",
    # serving
    "InfluenceIndex",
    "InfluenceService",
    # scoring
    "ScoreEngine",
]
