"""Typed, validated, JSON-round-trippable experiment specifications.

One :class:`ExperimentSpec` is the single declarative description of an
experiment: which graph, which diffusion model, which seed-selection
algorithm (or a fixed seed set), and how the result is estimated.  The
design follows the declarative graph-extraction interface of
Xirogiannopoulos & Deshpande (VLDB'17): the *what* of an experiment is a
plain, serialisable document; the *how* (which backend executes it) is
negotiated at run time from capability metadata.

Every spec class offers ``to_dict``/``from_dict`` (plain JSON types only)
and the pair round-trips exactly: ``Spec.from_dict(spec.to_dict()) ==
spec``.  Validation failures raise :class:`~repro.exceptions.SpecError`
whose message leads with the dotted path of the offending field
(``experiment.evaluation.estimator.theta: must be >= 1, got 0``), so an
error in a JSON document can be located without reading Python code.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.exceptions import SpecError

if TYPE_CHECKING:  # pragma: no cover - import-time only for annotations
    from repro.diffusion.base import DiffusionModel
    from repro.graphs.digraph import DiGraph

_S = TypeVar("_S", bound="_SpecBase")

#: Canonical estimator backend identifiers, in documentation order.
ESTIMATOR_BACKENDS = ("monte-carlo", "sketch", "index", "score")

#: Accepted aliases, normalised to canonical identifiers at spec creation.
BACKEND_ALIASES = {
    "mc": "monte-carlo",
    "montecarlo": "monte-carlo",
    "ris": "sketch",
    "rr-sketch": "sketch",
    "serving": "index",
    "score-engine": "score",
}

#: Objectives a spec may ask an estimator for (Defs. 3, 6 and 7 of the paper).
OBJECTIVES = ("spread", "opinion", "effective-opinion")

def _type_name(value: object) -> str:
    return type(value).__name__


def _check_mapping(data: object, path: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise SpecError(path, f"expected an object, got {_type_name(data)}")
    return data


def _reject_unknown(data: Mapping, known: Sequence[str], path: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise SpecError(
            path,
            f"unknown field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(sorted(known))}",
        )


def _require_type(
    value: object,
    types: Union[type, Tuple[type, ...]],
    path: str,
    what: str,
) -> object:
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise SpecError(path, f"must be {what}, got {value!r}")
    if not isinstance(value, types):
        raise SpecError(path, f"must be {what}, got {_type_name(value)}")
    return value


def _validate_label(value: Union[int, str], path: str) -> Union[int, str]:
    """Node labels are JSON scalars: ints or strings."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise SpecError(
            path, f"node labels must be integers or strings, got {_type_name(value)}"
        )
    return value


class _SpecBase:
    """Shared ``to_dict``/JSON plumbing for all spec dataclasses."""

    _path = "spec"

    @classmethod
    def _construct(cls: "type[_S]", kwargs: Mapping, path: str) -> "_S":
        """Build the spec, re-rooting validation errors at ``path``.

        ``__post_init__`` validation reports paths relative to the class's
        default root (e.g. ``graph.scale``); when the spec is nested inside
        a larger document the error must carry the full dotted path
        (``experiment.graph.scale``).
        """
        try:
            return cls(**dict(kwargs))
        except SpecError as error:
            default = cls._path
            if path != default and error.path.startswith(default):
                suffix = error.path[len(default):]
                message = str(error)[len(error.path) + 2:]
                raise SpecError(path + suffix, message) from None
            raise
        except TypeError as error:
            raise SpecError(path, str(error))

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON-types dictionary; nested specs become nested objects."""
        out: Dict[str, object] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            elif isinstance(value, (list, tuple)):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls: "type[_S]", text: str) -> "_S":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(cls._path, f"invalid JSON document ({error})")
        return cls.from_dict(data)

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        target = pathlib.Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls: "type[_S]", path: Union[str, pathlib.Path]) -> "_S":
        source = pathlib.Path(path)
        if not source.exists():
            raise SpecError(cls._path, f"spec file {str(source)!r} does not exist")
        return cls.from_json(source.read_text(encoding="utf-8"))


@dataclass
class GraphSpec(_SpecBase):
    """Where the experiment graph comes from and how it is annotated.

    Exactly one of ``dataset`` (a name from the synthetic dataset registry)
    or ``edge_list`` (a path to an edge-list file) must be given.
    """

    _path = "graph"

    dataset: Optional[str] = None
    edge_list: Optional[str] = None
    scale: float = 1.0
    seed: int = 0
    probability: Optional[float] = None
    annotate: bool = False
    opinion: str = "uniform"
    interaction: str = "uniform"
    annotation_seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "graph") -> None:
        if (self.dataset is None) == (self.edge_list is None):
            raise SpecError(
                path,
                "exactly one of 'dataset' and 'edge_list' must be set",
            )
        if self.dataset is not None:
            _require_type(self.dataset, str, f"{path}.dataset", "a string")
            from repro.datasets.registry import available_datasets

            if self.dataset not in available_datasets():
                raise SpecError(
                    f"{path}.dataset",
                    f"unknown dataset {self.dataset!r}; available: "
                    f"{', '.join(available_datasets())}",
                )
        if self.edge_list is not None:
            _require_type(self.edge_list, str, f"{path}.edge_list", "a string path")
        _require_type(self.scale, (int, float), f"{path}.scale", "a number")
        self.scale = float(self.scale)
        if self.scale <= 0:
            raise SpecError(f"{path}.scale", f"must be > 0, got {self.scale}")
        self.seed = int(_require_type(self.seed, int, f"{path}.seed", "an integer"))
        if self.probability is not None:
            _require_type(
                self.probability, (int, float), f"{path}.probability", "a number"
            )
            self.probability = float(self.probability)
            if not 0.0 < self.probability <= 1.0:
                raise SpecError(
                    f"{path}.probability",
                    f"must lie in (0, 1], got {self.probability}",
                )
        _require_type(self.annotate, bool, f"{path}.annotate", "a boolean")
        _require_type(self.opinion, str, f"{path}.opinion", "a string")
        _require_type(self.interaction, str, f"{path}.interaction", "a string")
        if self.annotation_seed is not None:
            self.annotation_seed = int(
                _require_type(
                    self.annotation_seed, int, f"{path}.annotation_seed", "an integer"
                )
            )

    @classmethod
    def from_dict(cls, data: object, path: str = "graph") -> "GraphSpec":
        mapping = _check_mapping(data, path)
        _reject_unknown(mapping, [f.name for f in dataclasses.fields(cls)], path)
        return cls._construct(mapping, path)

    def build(self) -> "DiGraph":
        """Materialise the graph this spec describes (with annotations).

        (Named ``build`` like :meth:`ModelSpec.build`; the inherited
        ``GraphSpec.load(path)`` classmethod reads a spec *file*.)
        """
        if self.dataset is not None:
            from repro.datasets.registry import load_dataset

            graph = load_dataset(
                self.dataset,
                scale=self.scale,
                seed=self.seed,
                probability=self.probability,
            )
        else:
            from repro.graphs.io import read_edge_list

            graph = read_edge_list(self.edge_list)
        if self.annotate:
            from repro.opinion.annotate import annotate_graph

            annotate_graph(
                graph,
                opinion=self.opinion,
                interaction=self.interaction,
                seed=self.seed if self.annotation_seed is None else self.annotation_seed,
            )
        return graph


@dataclass
class ModelSpec(_SpecBase):
    """Diffusion model name plus constructor parameters."""

    _path = "model"

    name: str = "ic"
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "model") -> None:
        _require_type(self.name, str, f"{path}.name", "a string")
        self.name = self.name.lower()
        from repro.diffusion.registry import available_models

        if self.name not in available_models():
            raise SpecError(
                f"{path}.name",
                f"unknown diffusion model {self.name!r}; available: "
                f"{', '.join(available_models())}",
            )
        self.params = dict(
            _check_mapping(self.params, f"{path}.params")
        )

    @classmethod
    def from_dict(cls, data: object, path: str = "model") -> "ModelSpec":
        if isinstance(data, str):
            # Shorthand: "model": "oi-ic"
            return cls._construct({"name": data}, path)
        mapping = _check_mapping(data, path)
        _reject_unknown(mapping, [f.name for f in dataclasses.fields(cls)], path)
        return cls._construct(mapping, path)

    def build(self) -> "DiffusionModel":
        """Instantiate the diffusion model."""
        from repro.diffusion.registry import get_model

        return get_model(self.name, **self.params)


@dataclass
class AlgorithmSpec(_SpecBase):
    """Seed-selection algorithm name plus constructor options.

    Options the algorithm's constructor does not understand fail at build
    time; capability-driven context (model / objective / penalty / seed) is
    injected by the runner only where the registry metadata says the
    algorithm accepts it, and never overrides an explicit option.
    """

    _path = "algorithm"

    name: str = "easyim"
    options: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "algorithm") -> None:
        _require_type(self.name, str, f"{path}.name", "a string")
        self.name = self.name.lower()
        from repro.algorithms.registry import available_algorithms

        if self.name not in available_algorithms():
            raise SpecError(
                f"{path}.name",
                f"unknown algorithm {self.name!r}; available: "
                f"{', '.join(available_algorithms())}",
            )
        self.options = dict(_check_mapping(self.options, f"{path}.options"))

    @classmethod
    def from_dict(cls, data: object, path: str = "algorithm") -> "AlgorithmSpec":
        if isinstance(data, str):
            # Shorthand: "algorithm": "tim+"
            return cls._construct({"name": data}, path)
        mapping = _check_mapping(data, path)
        _reject_unknown(mapping, [f.name for f in dataclasses.fields(cls)], path)
        return cls._construct(mapping, path)


@dataclass
class EstimatorSpec(_SpecBase):
    """Which spread-estimation backend answers ``estimate``/``sweep``.

    Backends (see :mod:`repro.api` for the adapters):

    ``monte-carlo``
        The batch Monte-Carlo engine — any model, any objective.
    ``sketch``
        A fresh RR-sketch collection (RIS oracle) — ic/wc/lt, spread only.
    ``index``
        A persistent :class:`~repro.serving.index.InfluenceIndex`, loaded
        from ``artifact`` or built on the fly — ic/wc/lt, spread only.
    ``score``
        The incremental :class:`~repro.scoring.engine.ScoreEngine` —
        EaSyIM/OSIM residual path scores, a fast *heuristic* proxy that is
        not sigma-comparable with the other backends.
    """

    _path = "estimator"

    backend: str = "monte-carlo"
    simulations: int = 1000
    theta: int = 20_000
    block_size: int = 2048
    engine_seed: int = 0
    workers: int = 1
    artifact: Optional[str] = None
    mmap: bool = True
    max_path_length: int = 3

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "estimator") -> None:
        _require_type(self.backend, str, f"{path}.backend", "a string")
        backend = BACKEND_ALIASES.get(self.backend.lower(), self.backend.lower())
        if backend not in ESTIMATOR_BACKENDS:
            raise SpecError(
                f"{path}.backend",
                f"unknown backend {self.backend!r}; available: "
                f"{', '.join(ESTIMATOR_BACKENDS)} "
                f"(aliases: {', '.join(sorted(BACKEND_ALIASES))})",
            )
        self.backend = backend
        for name in ("simulations", "theta", "block_size", "max_path_length", "workers"):
            value = int(
                _require_type(getattr(self, name), int, f"{path}.{name}", "an integer")
            )
            setattr(self, name, value)
            if value < 1:
                raise SpecError(f"{path}.{name}", f"must be >= 1, got {value}")
        self.engine_seed = int(
            _require_type(self.engine_seed, int, f"{path}.engine_seed", "an integer")
        )
        if self.artifact is not None:
            _require_type(self.artifact, str, f"{path}.artifact", "a string path")
            if self.backend != "index":
                raise SpecError(
                    f"{path}.artifact",
                    f"artifacts are only meaningful for the 'index' backend, "
                    f"got backend {self.backend!r}",
                )
        _require_type(self.mmap, bool, f"{path}.mmap", "a boolean")

    @classmethod
    def from_dict(cls, data: object, path: str = "estimator") -> "EstimatorSpec":
        if isinstance(data, str):
            # Shorthand: "estimator": "ris"
            return cls._construct({"backend": data}, path)
        mapping = _check_mapping(data, path)
        _reject_unknown(mapping, [f.name for f in dataclasses.fields(cls)], path)
        return cls._construct(mapping, path)


@dataclass
class EvalSpec(_SpecBase):
    """What to report about the selected seeds, and how to estimate it."""

    _path = "evaluation"

    objective: str = "spread"
    penalty: float = 1.0
    seed_counts: Optional[List[int]] = None
    estimator: EstimatorSpec = field(default_factory=EstimatorSpec)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "evaluation") -> None:
        _require_type(self.objective, str, f"{path}.objective", "a string")
        self.objective = self.objective.lower()
        if self.objective not in OBJECTIVES:
            raise SpecError(
                f"{path}.objective",
                f"unknown objective {self.objective!r}; available: "
                f"{', '.join(OBJECTIVES)}",
            )
        _require_type(self.penalty, (int, float), f"{path}.penalty", "a number")
        self.penalty = float(self.penalty)
        if self.penalty < 0:
            raise SpecError(f"{path}.penalty", f"must be >= 0, got {self.penalty}")
        if self.seed_counts is not None:
            _require_type(
                self.seed_counts, (list, tuple), f"{path}.seed_counts", "a list"
            )
            counts = []
            for i, value in enumerate(self.seed_counts):
                counts.append(
                    int(
                        _require_type(
                            value, int, f"{path}.seed_counts[{i}]", "an integer"
                        )
                    )
                )
                if counts[-1] < 0:
                    raise SpecError(
                        f"{path}.seed_counts[{i}]", f"must be >= 0, got {counts[-1]}"
                    )
            self.seed_counts = counts
        if not isinstance(self.estimator, EstimatorSpec):
            self.estimator = EstimatorSpec.from_dict(
                self.estimator, f"{path}.estimator"
            )

    @classmethod
    def from_dict(cls, data: object, path: str = "evaluation") -> "EvalSpec":
        mapping = _check_mapping(data, path)
        _reject_unknown(mapping, [f.name for f in dataclasses.fields(cls)], path)
        kwargs = dict(mapping)
        if "estimator" in kwargs:
            kwargs["estimator"] = EstimatorSpec.from_dict(
                kwargs["estimator"], f"{path}.estimator"
            )
        return cls._construct(kwargs, path)


@dataclass
class ExperimentSpec(_SpecBase):
    """The full declarative description of one experiment run.

    Exactly one of ``algorithm`` (select seeds) or ``seeds`` (evaluate a
    fixed list) must be given; ``budget`` is required with ``algorithm``.
    ``seed`` is the selection seed injected into seedable algorithms —
    distinct from ``graph.seed`` (generation) and
    ``evaluation.estimator.engine_seed`` (estimation).
    """

    _path = "experiment"

    name: str = "experiment"
    graph: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="nethept"))
    model: ModelSpec = field(default_factory=ModelSpec)
    algorithm: Optional[AlgorithmSpec] = None
    seeds: Optional[List[object]] = None
    budget: Optional[int] = None
    seed: Optional[int] = None
    evaluation: EvalSpec = field(default_factory=EvalSpec)
    notes: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "experiment") -> None:
        _require_type(self.name, str, f"{path}.name", "a string")
        if not isinstance(self.graph, GraphSpec):
            self.graph = GraphSpec.from_dict(self.graph, f"{path}.graph")
        if not isinstance(self.model, ModelSpec):
            self.model = ModelSpec.from_dict(self.model, f"{path}.model")
        if self.algorithm is not None and not isinstance(self.algorithm, AlgorithmSpec):
            self.algorithm = AlgorithmSpec.from_dict(
                self.algorithm, f"{path}.algorithm"
            )
        if not isinstance(self.evaluation, EvalSpec):
            self.evaluation = EvalSpec.from_dict(self.evaluation, f"{path}.evaluation")
        if (self.algorithm is None) == (self.seeds is None):
            raise SpecError(
                path,
                "exactly one of 'algorithm' (select seeds) and 'seeds' "
                "(evaluate a fixed seed list) must be set",
            )
        if self.seeds is not None:
            _require_type(self.seeds, (list, tuple), f"{path}.seeds", "a list")
            self.seeds = [
                _validate_label(s, f"{path}.seeds[{i}]")
                for i, s in enumerate(self.seeds)
            ]
            if self.budget is not None:
                raise SpecError(
                    f"{path}.budget",
                    "budget is implied by the explicit seed list; drop it",
                )
        if self.algorithm is not None:
            if self.budget is None:
                raise SpecError(
                    f"{path}.budget", "required when 'algorithm' is set"
                )
            self.budget = int(
                _require_type(self.budget, int, f"{path}.budget", "an integer")
            )
            if self.budget < 1:
                raise SpecError(f"{path}.budget", f"must be >= 1, got {self.budget}")
        if self.seed is not None:
            self.seed = int(
                _require_type(self.seed, int, f"{path}.seed", "an integer")
            )
        _require_type(self.notes, str, f"{path}.notes", "a string")
        counts = self.evaluation.seed_counts
        if counts is not None:
            limit = self.budget if self.budget is not None else len(self.seeds)
            for i, k in enumerate(counts):
                if k > limit:
                    raise SpecError(
                        f"{path}.evaluation.seed_counts[{i}]",
                        f"seed count {k} exceeds the available seeds ({limit})",
                    )

    @classmethod
    def from_dict(cls, data: object, path: str = "experiment") -> "ExperimentSpec":
        mapping = _check_mapping(data, path)
        _reject_unknown(mapping, [f.name for f in dataclasses.fields(cls)], path)
        kwargs = dict(mapping)
        if "graph" in kwargs:
            kwargs["graph"] = GraphSpec.from_dict(kwargs["graph"], f"{path}.graph")
        if "model" in kwargs:
            kwargs["model"] = ModelSpec.from_dict(kwargs["model"], f"{path}.model")
        if kwargs.get("algorithm") is not None:
            kwargs["algorithm"] = AlgorithmSpec.from_dict(
                kwargs["algorithm"], f"{path}.algorithm"
            )
        if "evaluation" in kwargs:
            kwargs["evaluation"] = EvalSpec.from_dict(
                kwargs["evaluation"], f"{path}.evaluation"
            )
        return cls._construct(kwargs, path)


def load_experiment_spec(path: Union[str, pathlib.Path]) -> ExperimentSpec:
    """Load and validate an :class:`ExperimentSpec` from a JSON file."""
    return ExperimentSpec.load(path)
