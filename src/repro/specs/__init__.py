"""Declarative experiment specifications (see :mod:`repro.specs.experiment`).

The spec layer is deliberately free of backend imports at module load time:
a spec is data, and validating one touches only the registries it names.
Execution lives in :mod:`repro.api`.
"""

from repro.specs.experiment import (
    BACKEND_ALIASES,
    ESTIMATOR_BACKENDS,
    OBJECTIVES,
    AlgorithmSpec,
    EstimatorSpec,
    EvalSpec,
    ExperimentSpec,
    GraphSpec,
    ModelSpec,
    load_experiment_spec,
)

__all__ = [
    "AlgorithmSpec",
    "BACKEND_ALIASES",
    "ESTIMATOR_BACKENDS",
    "EstimatorSpec",
    "EvalSpec",
    "ExperimentSpec",
    "GraphSpec",
    "ModelSpec",
    "OBJECTIVES",
    "load_experiment_spec",
]
