"""Named synthetic stand-ins for the paper's benchmark graphs (Table 2).

The paper evaluates on SNAP/arXiv graphs ranging from NetHEPT (15K nodes,
62K edges) to Friendster (65.6M nodes, 3.6B edges).  Those corpora are not
redistributable and billion-edge graphs are out of reach for a pure-Python
laptop run, so every dataset is replaced by a *synthetic stand-in* generated
to match the original's qualitative shape — directedness, relative size
ordering, density (average degree) and small effective diameter — at a
configurable scale.  ``scale=1.0`` produces graphs that run every benchmark in
minutes; larger scales grow the node count proportionally and keep the target
average degree.

The ``paper_*`` fields record the original statistics so the Table 2 bench can
print paper-vs-synthetic side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.datasets.synthetic import (
    make_citation_like_graph,
    make_community_social_graph,
    make_directed_social_graph,
)
from repro.exceptions import DatasetError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one named dataset and its synthetic stand-in."""

    name: str
    paper_nodes: int
    paper_edges: int
    paper_type: str
    paper_avg_degree: float
    paper_diameter: float
    base_nodes: int
    target_avg_degree: float
    family: str  # "citation", "community" or "directed-social"
    size_class: str  # "medium" or "large" (matches the paper's grouping)

    def nodes_at_scale(self, scale: float) -> int:
        return max(16, int(round(self.base_nodes * scale)))


_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("nethept", 15_000, 62_000, "undirected", 4.1, 8.8,
                    base_nodes=600, target_avg_degree=4.1, family="citation",
                    size_class="medium"),
        DatasetSpec("hepph", 12_000, 237_000, "undirected", 19.75, 5.8,
                    base_nodes=500, target_avg_degree=19.75, family="citation",
                    size_class="medium"),
        DatasetSpec("dblp", 317_000, 2_100_000, "undirected", 6.63, 8.0,
                    base_nodes=1_500, target_avg_degree=6.63, family="citation",
                    size_class="medium"),
        DatasetSpec("youtube", 1_130_000, 5_980_000, "undirected", 5.29, 6.5,
                    base_nodes=2_500, target_avg_degree=5.29, family="community",
                    size_class="medium"),
        DatasetSpec("soclive", 4_850_000, 69_000_000, "directed", 14.23, 6.5,
                    base_nodes=3_500, target_avg_degree=14.23, family="directed-social",
                    size_class="large"),
        DatasetSpec("orkut", 3_070_000, 234_200_000, "undirected", 76.29, 4.8,
                    base_nodes=1_200, target_avg_degree=40.0, family="community",
                    size_class="large"),
        DatasetSpec("twitter", 41_600_000, 1_500_000_000, "directed", 36.06, 5.1,
                    base_nodes=4_000, target_avg_degree=24.0, family="directed-social",
                    size_class="large"),
        DatasetSpec("friendster", 65_600_000, 3_600_000_000, "undirected", 54.88, 5.8,
                    base_nodes=5_000, target_avg_degree=30.0, family="community",
                    size_class="large"),
    )
}

_ALIASES = {
    "nethept-small": "nethept",
    "hepph-small": "hepph",
    "net-hept": "nethept",
    "hep-ph": "hepph",
    "soc-livejournal": "soclive",
    "livejournal": "soclive",
}


def available_datasets() -> list[str]:
    """Sorted list of registered dataset names."""
    return sorted(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for ``name`` (aliases accepted)."""
    key = str(name).lower()
    key = _ALIASES.get(key, key)
    if key not in _SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return _SPECS[key]


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: RandomState = 0,
    probability: Optional[float] = None,
) -> DiGraph:
    """Generate the synthetic stand-in for the named dataset.

    Parameters
    ----------
    name:
        Dataset name (see :func:`available_datasets`).
    scale:
        Multiplier on the node count of the stand-in (1.0 = the laptop-sized
        default recorded in the spec).
    seed:
        Seed controlling the generator (the same seed reproduces the same
        graph exactly).
    probability:
        Optional uniform IC probability to assign to every edge; defaults to
        the paper's ``p = 0.1``.
    """
    spec = dataset_spec(name)
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    rng = ensure_rng(seed)
    nodes = spec.nodes_at_scale(scale)
    if spec.family == "citation":
        graph = make_citation_like_graph(nodes, spec.target_avg_degree, rng)
    elif spec.family == "community":
        graph = make_community_social_graph(nodes, spec.target_avg_degree, rng)
    elif spec.family == "directed-social":
        graph = make_directed_social_graph(nodes, spec.target_avg_degree, rng)
    else:  # pragma: no cover - specs are defined in this module
        raise DatasetError(f"unknown dataset family {spec.family!r}")
    graph.name = spec.name
    if probability is not None:
        graph.set_uniform_probabilities(probability)
    else:
        graph.set_uniform_probabilities(0.1)
    return graph
