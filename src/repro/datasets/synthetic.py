"""Graph-family builders backing the synthetic dataset registry.

Three families cover the qualitative shapes of the paper's Table 2 graphs:

* *citation-like* (NetHEPT, HepPh, DBLP) — undirected collaboration networks
  with heavy-tailed degrees and high clustering → Holme–Kim power-law cluster
  generator, bidirected.
* *community social* (YouTube, Orkut, Friendster) — undirected social networks
  with community structure → power-law cluster core plus stochastic-block
  style cross-community edges.
* *directed social* (socLiveJournal, Twitter) — directed follower networks
  with shrinking diameter → forest-fire generator densified to the target
  average degree.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    forest_fire_graph,
    powerlaw_cluster_graph,
)
from repro.utils.rng import RandomState, ensure_rng


def _attachment_for_degree(target_avg_degree: float) -> int:
    """Attachment parameter giving roughly the target average (directed) degree.

    A bidirected Holme–Kim graph with attachment ``a`` has about ``2 a n``
    directed edges, i.e. average directed out-degree ``≈ a``... but the paper
    reports average degree as ``m / n`` over directed edge count, so we match
    ``a ≈ target / 2`` and densify the remainder with random extra edges.
    """
    return max(1, int(round(target_avg_degree / 2.0)))


def _densify(graph: DiGraph, target_avg_degree: float, rng: np.random.Generator) -> None:
    """Add random bidirected edges until the average degree reaches the target."""
    n = graph.number_of_nodes
    target_edges = int(target_avg_degree * n)
    nodes = list(graph.nodes())
    attempts = 0
    max_attempts = 20 * max(target_edges, 1)
    while graph.number_of_edges < target_edges and attempts < max_attempts:
        attempts += 1
        u = nodes[int(rng.integers(0, n))]
        v = nodes[int(rng.integers(0, n))]
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        graph.add_edge(v, u)


def make_citation_like_graph(
    nodes: int, target_avg_degree: float, seed: RandomState
) -> DiGraph:
    """Collaboration-network stand-in (NetHEPT / HepPh / DBLP)."""
    rng = ensure_rng(seed)
    attachment = _attachment_for_degree(target_avg_degree)
    graph = powerlaw_cluster_graph(
        nodes, attachment=attachment, triangle_probability=0.6, seed=rng
    )
    _densify(graph, target_avg_degree, rng)
    return graph


def make_community_social_graph(
    nodes: int, target_avg_degree: float, seed: RandomState
) -> DiGraph:
    """Community-structured social-network stand-in (YouTube / Orkut / Friendster)."""
    rng = ensure_rng(seed)
    attachment = _attachment_for_degree(target_avg_degree * 0.8)
    graph = powerlaw_cluster_graph(
        nodes, attachment=attachment, triangle_probability=0.3, seed=rng
    )
    # Community overlay: partition nodes into sqrt(n)-sized groups and add a few
    # intra-community edges, which raises clustering and keeps diameter small.
    n = graph.number_of_nodes
    community_size = max(4, int(np.sqrt(n)))
    nodes_list = list(graph.nodes())
    rng.shuffle(nodes_list)
    for start in range(0, n, community_size):
        community = nodes_list[start:start + community_size]
        extra = max(1, len(community) // 2)
        for _ in range(extra):
            u = community[int(rng.integers(0, len(community)))]
            v = community[int(rng.integers(0, len(community)))]
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
                graph.add_edge(v, u)
    _densify(graph, target_avg_degree, rng)
    return graph


def make_directed_social_graph(
    nodes: int, target_avg_degree: float, seed: RandomState
) -> DiGraph:
    """Directed follower-network stand-in (socLiveJournal / Twitter)."""
    rng = ensure_rng(seed)
    graph = forest_fire_graph(
        nodes, forward_probability=0.3, backward_probability=0.2, seed=rng
    )
    # Forest fire alone is sparse; add preferential random directed edges up to
    # the target density.  Targets are sampled in batches proportionally to
    # their current in-degree, which preserves the heavy-tailed in-degree
    # distribution of follower networks while keeping generation fast.
    n = graph.number_of_nodes
    target_edges = int(target_avg_degree * n)
    nodes_list = list(graph.nodes())
    in_degree_weight = np.array(
        [graph.in_degree(v) + 1.0 for v in nodes_list], dtype=np.float64
    )
    max_batches = 200
    batch_size = max(256, target_edges // 50)
    for _ in range(max_batches):
        if graph.number_of_edges >= target_edges:
            break
        probabilities = in_degree_weight / in_degree_weight.sum()
        source_positions = rng.integers(0, n, size=batch_size)
        target_positions = rng.choice(n, size=batch_size, p=probabilities)
        for source_position, target_position in zip(source_positions, target_positions):
            if graph.number_of_edges >= target_edges:
                break
            u = nodes_list[int(source_position)]
            v = nodes_list[int(target_position)]
            if u == v or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
            in_degree_weight[int(target_position)] += 1.0
    return graph
