"""Synthetic customer-churn records for the Sec. 4.1.2 case study.

The PAKDD-2012 data-mining-competition dataset (telecom customer profiles with
churn labels) is not redistributable.  This module generates synthetic
customer records with the properties the paper's pipeline relies on:

* numeric customer attributes (billing, usage, service requests, complaints,
  tenure) whose joint distribution differs between churners and non-churners —
  so attribute similarity correlates with churn behaviour, which is the
  "similar customers churn similarly" hypothesis the paper builds on;
* a balanced churner / non-churner split, mirroring the balanced 34K-customer
  subset the paper works with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng

#: Attribute column names of the synthetic records.
ATTRIBUTE_NAMES = (
    "monthly_bill",
    "data_usage_gb",
    "voice_minutes",
    "service_requests",
    "complaints",
    "tenure_months",
    "late_payments",
    "plan_changes",
)


@dataclass
class CustomerRecords:
    """Synthetic customer base: attribute matrix plus churn labels."""

    attributes: np.ndarray  # shape (customers, len(ATTRIBUTE_NAMES))
    churned: np.ndarray     # shape (customers,), bool
    attribute_names: tuple = ATTRIBUTE_NAMES

    @property
    def number_of_customers(self) -> int:
        return int(self.attributes.shape[0])

    def churn_labels(self) -> np.ndarray:
        """Labels in the paper's convention: churners −1, non-churners +1."""
        return np.where(self.churned, -1.0, 1.0)


def generate_customer_records(
    customers: int = 400,
    churn_fraction: float = 0.5,
    seed: RandomState = 0,
) -> CustomerRecords:
    """Generate ``customers`` synthetic records with a given churner fraction.

    Churners are drawn from attribute distributions with higher complaint and
    late-payment rates, shorter tenure and more plan changes; non-churners are
    the opposite.  Both groups overlap, so the similarity graph is not
    trivially separable (as in real churn data).
    """
    if customers < 2:
        raise ConfigurationError(f"customers must be >= 2, got {customers}")
    if not 0.0 < churn_fraction < 1.0:
        raise ConfigurationError(
            f"churn_fraction must lie in (0, 1), got {churn_fraction}"
        )
    rng = ensure_rng(seed)
    churn_count = int(round(customers * churn_fraction))
    keep_count = customers - churn_count

    def sample_group(count: int, churner: bool) -> np.ndarray:
        shift = 1.0 if churner else 0.0
        monthly_bill = rng.normal(60 + 25 * shift, 18, size=count)
        data_usage = rng.gamma(2.0 + (1.0 - shift), 2.0, size=count)
        voice_minutes = rng.normal(300 - 80 * shift, 90, size=count)
        service_requests = rng.poisson(1.0 + 2.5 * shift, size=count)
        complaints = rng.poisson(0.3 + 2.0 * shift, size=count)
        tenure = rng.gamma(3.0 - 1.2 * shift + 0.3, 12.0, size=count)
        late_payments = rng.poisson(0.5 + 1.8 * shift, size=count)
        plan_changes = rng.poisson(0.4 + 1.2 * shift, size=count)
        return np.column_stack(
            [
                monthly_bill,
                data_usage,
                voice_minutes,
                service_requests,
                complaints,
                tenure,
                late_payments,
                plan_changes,
            ]
        )

    churner_rows = sample_group(churn_count, churner=True)
    keeper_rows = sample_group(keep_count, churner=False)
    attributes = np.vstack([churner_rows, keeper_rows])
    churned = np.concatenate(
        [np.ones(churn_count, dtype=bool), np.zeros(keep_count, dtype=bool)]
    )
    # Shuffle so churners and non-churners are interleaved.
    order = rng.permutation(customers)
    return CustomerRecords(attributes=attributes[order], churned=churned[order])
