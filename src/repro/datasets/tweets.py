"""Synthetic Twitter corpus for the Sec. 4.1.1 case study.

The paper crawls 41.6M users, 1.5B follower edges and 476M tweets, tags each
tweet with hashtags, and scores sentiment with commercial APIs.  None of that
data is redistributable, so this module generates a *behaviourally equivalent*
synthetic corpus:

* a directed background follower graph (forest-fire stand-in);
* a set of topics (hashtags), each with a latent "controversy" profile;
* per user, a latent opinion per topic, correlated across related topics so
  that the paper's opinion-estimation-from-history procedure has signal;
* a time-ordered tweet stream per topic: cascades start at a few originator
  users and spread along follower edges; a recruited user's *expressed*
  opinion mixes their latent opinion with the expressed opinion of the user
  who recruited them (agreeing most of the time), and each tweet's *text* is
  composed from sentiment-lexicon words reflecting that expressed opinion plus
  noise words, so the lexicon analyser recovers it with realistic error.

The corpus exposes both the observable data (graph + tweets) and the latent
ground truth (true opinions per topic), which the Fig. 5a/5b benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.synthetic import make_directed_social_graph
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiGraph
from repro.opinion.topics import Tweet
from repro.utils.rng import RandomState, ensure_rng

#: Words drawn for a positive-opinion tweet, by increasing strength.
_POSITIVE_WORDS = ["fine", "nice", "good", "great", "excellent", "amazing", "love"]
#: Words drawn for a negative-opinion tweet, by increasing strength.
_NEGATIVE_WORDS = ["meh", "slow", "poor", "bad", "disappointing", "terrible", "hate"]
#: Sentiment-free filler words.
_NEUTRAL_WORDS = [
    "today", "just", "saw", "the", "new", "update", "about", "this", "thing",
    "people", "talking", "everyone", "check", "out", "thread", "news", "again",
]

#: Default topic names, loosely mirroring the hashtags in Fig. 5a.
DEFAULT_TOPICS = (
    "#followfriday", "#healthcare", "#obama", "#iphone", "#worldcup",
    "#music", "#jobs", "#travel",
)


@dataclass
class SyntheticTweetCorpus:
    """Background graph, tweet stream and latent ground truth."""

    background_graph: DiGraph
    tweets: List[Tweet]
    topics: List[str]
    #: topic -> {user -> latent (true) opinion}
    true_opinions: Dict[str, Dict[object, float]] = field(default_factory=dict)
    #: topic -> originator users of the synthetic cascades
    true_originators: Dict[str, List[object]] = field(default_factory=dict)

    def tweets_for_topic(self, topic: str) -> List[Tweet]:
        return [tweet for tweet in self.tweets if tweet.topic == topic]


def _compose_tweet_text(
    opinion: float, topic: str, rng: np.random.Generator
) -> str:
    """Compose a short tweet whose lexicon sentiment approximates ``opinion``."""
    words: List[str] = [topic]
    strength = abs(opinion)
    sentiment_words = _POSITIVE_WORDS if opinion >= 0 else _NEGATIVE_WORDS
    # Stronger opinions use stronger and more sentiment words.
    count = 1 + int(strength * 2.5)
    for _ in range(count):
        # Index into the word lists proportionally to strength, with noise.
        position = int(
            np.clip(
                round(strength * (len(sentiment_words) - 1) + rng.normal(0, 0.8)),
                0,
                len(sentiment_words) - 1,
            )
        )
        if strength < 0.05 and rng.random() < 0.8:
            words.append(_NEUTRAL_WORDS[int(rng.integers(0, len(_NEUTRAL_WORDS)))])
        else:
            words.append(sentiment_words[position])
    filler = rng.integers(2, 6)
    for _ in range(int(filler)):
        words.append(_NEUTRAL_WORDS[int(rng.integers(0, len(_NEUTRAL_WORDS)))])
    rng.shuffle(words)
    return " ".join(words)


def generate_tweet_corpus(
    users: int = 400,
    topics: Sequence[str] = DEFAULT_TOPICS,
    tweets_per_topic: int = 300,
    originators_per_topic: int = 5,
    average_degree: float = 8.0,
    seed: RandomState = 0,
) -> SyntheticTweetCorpus:
    """Generate a synthetic tweet corpus over a synthetic follower graph.

    Parameters
    ----------
    users:
        Number of users in the background follower graph.
    topics:
        Topic (hashtag) names; consecutive topics are treated as "related",
        i.e. a user's latent opinions on neighbouring topics are correlated,
        which gives the history-based opinion estimator signal to exploit.
    tweets_per_topic:
        Length of each topic's tweet stream.
    originators_per_topic:
        Number of users that start each topic's cascades.
    average_degree:
        Density of the background graph.
    """
    if users < 10:
        raise ConfigurationError(f"users must be >= 10, got {users}")
    if tweets_per_topic < originators_per_topic:
        raise ConfigurationError(
            "tweets_per_topic must be at least originators_per_topic"
        )
    rng = ensure_rng(seed)
    background = make_directed_social_graph(users, average_degree, rng)
    background.name = "twitter-background"
    # The influence probability matches the per-edge participation probability
    # used by the cascade process below — i.e. what one would estimate from the
    # observed retweet rate, which is how the paper derives p from data.
    participation_probability = 0.35
    background.set_uniform_probabilities(participation_probability)
    user_list = list(background.nodes())

    topics = list(topics)
    # Latent per-user opinions, correlated across consecutive (related) topics.
    base_opinion = rng.uniform(-1.0, 1.0, size=users)
    true_opinions: Dict[str, Dict[object, float]] = {}
    for topic_index, topic in enumerate(topics):
        drift = rng.normal(0.0, 0.25, size=users)
        topic_bias = rng.normal(0.0, 0.3)
        values = np.clip(base_opinion + topic_index * 0.02 + topic_bias + drift, -1, 1)
        true_opinions[topic] = {
            user: float(values[i]) for i, user in enumerate(user_list)
        }

    tweets: List[Tweet] = []
    true_originators: Dict[str, List[object]] = {}
    timestamp = 0.0
    for topic in topics:
        # Pick originators biased towards high out-degree users (influencers).
        degrees = np.array([background.out_degree(u) + 1.0 for u in user_list])
        probabilities = degrees / degrees.sum()
        originator_positions = rng.choice(
            users, size=originators_per_topic, replace=False, p=probabilities
        )
        originators = [user_list[int(i)] for i in originator_positions]
        true_originators[topic] = originators

        # Cascade: start from originators, spread along follower edges.  A
        # recruited user expresses an opinion that *mixes* their own latent
        # opinion with the expressed opinion of the user who pulled them into
        # the cascade (agreeing most of the time, disagreeing otherwise) —
        # the opinion dynamics the OI model postulates and the paper observes
        # in the real Twitter data.
        agreement_probability = 0.8
        expressed_opinion: Dict[object, float] = {}
        participating: List[object] = list(originators)
        participating_set = set(originators)
        for originator in originators:
            expressed_opinion[originator] = true_opinions[topic][originator]
        frontier = list(originators)
        while frontier and len(participating) < tweets_per_topic:
            next_frontier: List[object] = []
            for user in frontier:
                for follower in background.successors(user):
                    if follower in participating_set:
                        continue
                    if rng.random() < participation_probability:
                        sign = 1.0 if rng.random() < agreement_probability else -1.0
                        mixed = (
                            true_opinions[topic][follower]
                            + sign * expressed_opinion[user]
                        ) / 2.0
                        expressed_opinion[follower] = float(np.clip(mixed, -1.0, 1.0))
                        participating.append(follower)
                        participating_set.add(follower)
                        next_frontier.append(follower)
                        if len(participating) >= tweets_per_topic:
                            break
                if len(participating) >= tweets_per_topic:
                    break
            frontier = next_frontier
        # Top up with random users if the cascade died early; they tweet
        # spontaneously, so they express their own (noisy) latent opinion.
        while len(participating) < tweets_per_topic:
            user = user_list[int(rng.integers(0, users))]
            if user not in participating_set:
                expressed_opinion[user] = float(
                    np.clip(true_opinions[topic][user] + rng.normal(0.0, 0.1), -1.0, 1.0)
                )
                participating.append(user)
                participating_set.add(user)

        for user in participating:
            timestamp += float(rng.exponential(1.0))
            expressed = float(
                np.clip(expressed_opinion[user] + rng.normal(0.0, 0.1), -1.0, 1.0)
            )
            tweets.append(
                Tweet(
                    user=user,
                    timestamp=timestamp,
                    text=_compose_tweet_text(expressed, topic, rng),
                    topic=topic,
                )
            )
        # Quiet gap between topics so topic subgraphs do not interleave.
        timestamp += 50.0

    return SyntheticTweetCorpus(
        background_graph=background,
        tweets=tweets,
        topics=topics,
        true_opinions=true_opinions,
        true_originators=true_originators,
    )
