"""Synthetic stand-ins for the paper's datasets (Table 2, Twitter and PAKDD)."""

from repro.datasets.registry import (
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load_dataset,
)
from repro.datasets.tweets import SyntheticTweetCorpus, generate_tweet_corpus
from repro.datasets.pakdd import CustomerRecords, generate_customer_records

__all__ = [
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "SyntheticTweetCorpus",
    "generate_tweet_corpus",
    "CustomerRecords",
    "generate_customer_records",
]
