"""Subgraph sampling utilities.

The Twitter case study (Sec. 4.1.1) projects a huge background graph down to
activity-focused subgraphs.  The samplers here support the synthetic version
of that pipeline and general down-scaling of the registry datasets.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiGraph, Node
from repro.utils.rng import RandomState, ensure_rng


def random_node_sample(graph: DiGraph, count: int, seed: RandomState = None) -> DiGraph:
    """Induced subgraph on ``count`` uniformly sampled nodes."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    nodes = list(graph.nodes())
    if count >= len(nodes):
        return graph.copy()
    rng = ensure_rng(seed)
    positions = rng.choice(len(nodes), size=count, replace=False)
    return graph.subgraph(nodes[i] for i in positions)


def snowball_sample(
    graph: DiGraph,
    seeds: Iterable[Node],
    max_nodes: int,
    max_depth: int = 3,
) -> DiGraph:
    """Breadth-first (snowball) expansion from ``seeds`` up to ``max_nodes``.

    Expansion follows out-edges; depth is capped at ``max_depth`` which keeps
    the sample local, mimicking topic-focused subgraphs.
    """
    if max_nodes < 1:
        raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
    selected: set[Node] = set()
    queue: deque[tuple[Node, int]] = deque()
    for seed_node in seeds:
        if seed_node in graph and seed_node not in selected:
            selected.add(seed_node)
            queue.append((seed_node, 0))
    while queue and len(selected) < max_nodes:
        current, depth = queue.popleft()
        if depth >= max_depth:
            continue
        for neighbor in graph.successors(current):
            if neighbor not in selected:
                selected.add(neighbor)
                queue.append((neighbor, depth + 1))
                if len(selected) >= max_nodes:
                    break
    return graph.subgraph(selected)


def random_edge_sample(graph: DiGraph, count: int, seed: RandomState = None) -> DiGraph:
    """Subgraph made of ``count`` uniformly sampled edges (plus endpoints)."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    edges = list(graph.edges())
    rng = ensure_rng(seed)
    if count < len(edges):
        positions = rng.choice(len(edges), size=count, replace=False)
        edges = [edges[i] for i in positions]
    sample = DiGraph(name=f"{graph.name}-edge-sample")
    for source, target, data in edges:
        sample.add_edge(
            source,
            target,
            probability=data.probability,
            weight=data.weight,
            interaction=data.interaction,
        )
        for node in (source, target):
            opinion = graph.opinion(node)
            if opinion is not None:
                sample.set_opinion(node, opinion)
    return sample
