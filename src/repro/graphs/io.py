"""Edge-list persistence.

The SNAP benchmark graphs used in the paper ship as whitespace-separated edge
lists with ``#`` comment lines; the readers below understand that format plus
an extended variant carrying per-edge probability and interaction columns and
per-node opinion lines, so annotated graphs can be round-tripped to disk.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, TextIO, Union

from repro.exceptions import DatasetError
from repro.graphs.digraph import (
    DEFAULT_INFLUENCE_PROBABILITY,
    DEFAULT_INTERACTION_PROBABILITY,
    DiGraph,
)

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def read_edge_list(
    path: PathLike,
    directed: bool = True,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
    interaction: float = DEFAULT_INTERACTION_PROBABILITY,
    name: str = "",
) -> DiGraph:
    """Read a (possibly gzipped) edge list into a :class:`DiGraph`.

    Accepted line formats (``#`` starts a comment):

    * ``u v``                     — edge with default attributes
    * ``u v p``                   — edge with influence probability ``p``
    * ``u v p phi``               — edge with probability and interaction
    * ``N u opinion``             — node-opinion record (written by
      :func:`write_edge_list` when opinions are present)

    Node identifiers are parsed as integers when possible, otherwise kept as
    strings.
    """
    graph = DiGraph(name=name or Path(path).stem)
    opinions: list[tuple[object, float]] = []
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "N":
                if len(parts) != 3:
                    raise DatasetError(
                        f"{path}:{lineno}: node-opinion lines must be 'N node opinion'"
                    )
                opinions.append((_parse_node(parts[1]), float(parts[2])))
                continue
            if len(parts) < 2 or len(parts) > 4:
                raise DatasetError(
                    f"{path}:{lineno}: expected 2-4 whitespace-separated fields, "
                    f"got {len(parts)}"
                )
            source = _parse_node(parts[0])
            target = _parse_node(parts[1])
            p = float(parts[2]) if len(parts) >= 3 else probability
            phi = float(parts[3]) if len(parts) == 4 else interaction
            graph.add_edge(source, target, probability=p, interaction=phi)
            if not directed:
                graph.add_edge(target, source, probability=p, interaction=phi)
    for node, opinion in opinions:
        graph.add_node(node)
        graph.set_opinion(node, opinion)
    return graph


def write_edge_list(
    graph: DiGraph,
    path: PathLike,
    include_attributes: bool = True,
    include_opinions: bool = True,
) -> None:
    """Write ``graph`` as an edge list understood by :func:`read_edge_list`."""
    with _open_text(path, "w") as handle:
        handle.write(f"# repro edge list: {graph.name or 'unnamed'}\n")
        handle.write(
            f"# nodes={graph.number_of_nodes} edges={graph.number_of_edges}\n"
        )
        if include_opinions and graph.has_opinions():
            for node in graph.nodes():
                handle.write(f"N {node} {graph.opinion(node):.6f}\n")
        for source, target, data in graph.edges():
            if include_attributes:
                handle.write(
                    f"{source} {target} {data.probability:.6f} {data.interaction:.6f}\n"
                )
            else:
                handle.write(f"{source} {target}\n")


def iter_edge_tuples(graph: DiGraph) -> Iterable[tuple]:
    """Yield plain ``(source, target, probability, interaction)`` tuples."""
    for source, target, data in graph.edges():
        yield source, target, data.probability, data.interaction


def _parse_node(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        return token
