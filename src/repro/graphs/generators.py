"""Synthetic graph generators.

These generators provide the topology substrate for the synthetic stand-ins of
the paper's benchmark datasets (Table 2) and for the randomised structures
used in tests (trees, DAGs, paths).  All generators accept a ``seed`` and are
fully deterministic for a fixed seed.

Every generator returns a directed :class:`DiGraph`; generators that are
conceptually undirected (Barabási–Albert, Watts–Strogatz, …) add arcs in both
directions, matching the paper's treatment of undirected SNAP graphs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DEFAULT_INFLUENCE_PROBABILITY, DiGraph
from repro.utils.rng import RandomState, ensure_rng


def _empty(n: int, name: str) -> DiGraph:
    if n < 0:
        raise ConfigurationError(f"number of nodes must be >= 0, got {n}")
    graph = DiGraph(name=name)
    graph.add_nodes_from(range(n))
    return graph


# --------------------------------------------------------------------------
# deterministic topologies


def path_graph(n: int, probability: float = DEFAULT_INFLUENCE_PROBABILITY) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    graph = _empty(n, f"path-{n}")
    for i in range(n - 1):
        graph.add_edge(i, i + 1, probability=probability)
    return graph


def cycle_graph(n: int, probability: float = DEFAULT_INFLUENCE_PROBABILITY) -> DiGraph:
    """Directed cycle on ``n >= 2`` nodes."""
    if n < 2:
        raise ConfigurationError(f"a cycle needs at least 2 nodes, got {n}")
    graph = path_graph(n, probability=probability)
    graph.name = f"cycle-{n}"
    graph.add_edge(n - 1, 0, probability=probability)
    return graph


def star_graph(n_leaves: int, probability: float = DEFAULT_INFLUENCE_PROBABILITY) -> DiGraph:
    """Star with hub ``0`` pointing at ``n_leaves`` leaves."""
    graph = _empty(n_leaves + 1, f"star-{n_leaves}")
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf, probability=probability)
    return graph


def complete_graph(n: int, probability: float = DEFAULT_INFLUENCE_PROBABILITY) -> DiGraph:
    """Complete directed graph (both arcs between every node pair)."""
    graph = _empty(n, f"complete-{n}")
    for u in range(n):
        for v in range(n):
            if u != v:
                graph.add_edge(u, v, probability=probability)
    return graph


# --------------------------------------------------------------------------
# random topologies


def erdos_renyi_graph(
    n: int,
    edge_probability: float,
    seed: RandomState = None,
    directed: bool = True,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """G(n, p) random graph.

    ``edge_probability`` is the probability of each ordered (or unordered,
    when ``directed=False``) node pair being connected; ``probability`` is the
    IC influence probability assigned to the created edges.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    rng = ensure_rng(seed)
    graph = _empty(n, f"erdos-renyi-{n}")
    if n < 2 or edge_probability == 0.0:
        return graph
    for u in range(n):
        start = 0 if directed else u + 1
        draws = rng.random(n - start) if not directed else rng.random(n)
        # Only iterate the hits — the dense per-pair Python loop made sparse
        # G(n, p) quadratic in n.  The draw layout (and hence the generated
        # graph for a fixed seed) is unchanged.
        for offset in np.flatnonzero(draws < edge_probability):
            v = start + int(offset)
            if v == u:
                continue
            graph.add_edge(u, v, probability=probability)
            if not directed:
                graph.add_edge(v, u, probability=probability)
    return graph


def random_kout_graph(
    n: int,
    out_degree: int,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """Random ``k``-out graph: every node points at ``out_degree`` uniformly
    random other nodes.

    Runs in ``O(n * out_degree)`` — unlike :func:`erdos_renyi_graph`, which
    must consider every node pair — so it is the substrate of choice for
    large-scale benchmarks.  In-degrees are Binomial(``n * k / n``), i.e.
    tightly concentrated: no hubs.  Repeat draws for the same (u, v) pair
    are possible but rare (expected ``k^2 / 2n`` per node) and collapse to a
    single edge, so the realised mean out-degree can fall marginally below
    ``out_degree``.
    """
    if out_degree < 1:
        raise ConfigurationError(f"out_degree must be >= 1, got {out_degree}")
    if n <= out_degree:
        raise ConfigurationError(
            f"need n > out_degree, got n={n}, out_degree={out_degree}"
        )
    rng = ensure_rng(seed)
    graph = _empty(n, f"random-{out_degree}out-{n}")
    targets = rng.integers(0, n - 1, size=(n, out_degree))
    # Shift draws >= u up by one: a uniform pick over the n-1 non-self nodes.
    targets += targets >= np.arange(n, dtype=np.int64)[:, None]
    for u, row in enumerate(targets.tolist()):
        for v in row:
            graph.add_edge(u, v, probability=probability)
    return graph


def barabasi_albert_graph(
    n: int,
    attachment: int,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """Preferential-attachment (scale-free) graph, bidirected.

    Each new node attaches to ``attachment`` existing nodes chosen
    proportionally to their current degree.  Scale-free degree distributions
    match the heavy-tailed shape of the citation and social graphs in the
    paper's Table 2.
    """
    if attachment < 1:
        raise ConfigurationError(f"attachment must be >= 1, got {attachment}")
    if n <= attachment:
        raise ConfigurationError(
            f"need n > attachment, got n={n}, attachment={attachment}"
        )
    rng = ensure_rng(seed)
    graph = _empty(n, f"barabasi-albert-{n}-{attachment}")
    # Start from a small clique over the first (attachment + 1) nodes.
    repeated_targets: list[int] = []
    for u in range(attachment + 1):
        for v in range(u + 1, attachment + 1):
            graph.add_edge(u, v, probability=probability)
            graph.add_edge(v, u, probability=probability)
            repeated_targets.extend((u, v))
    for new_node in range(attachment + 1, n):
        # Record picks in draw order: iterating a set here would make edge
        # insertion (and with it every later preferential draw) depend on
        # hash-table layout instead of the seeded RNG alone.
        chosen: list[int] = []
        chosen_seen: set[int] = set()
        while len(chosen) < attachment:
            pick = repeated_targets[int(rng.integers(0, len(repeated_targets)))]
            if pick not in chosen_seen:
                chosen_seen.add(pick)
                chosen.append(pick)
        for target in chosen:
            graph.add_edge(new_node, target, probability=probability)
            graph.add_edge(target, new_node, probability=probability)
            repeated_targets.extend((new_node, target))
    return graph


def watts_strogatz_graph(
    n: int,
    nearest_neighbors: int,
    rewire_probability: float,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """Small-world ring lattice with random rewiring, bidirected."""
    if nearest_neighbors % 2 or nearest_neighbors < 2:
        raise ConfigurationError(
            f"nearest_neighbors must be an even integer >= 2, got {nearest_neighbors}"
        )
    if nearest_neighbors >= n:
        raise ConfigurationError("nearest_neighbors must be smaller than n")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ConfigurationError(
            f"rewire_probability must lie in [0, 1], got {rewire_probability}"
        )
    rng = ensure_rng(seed)
    graph = _empty(n, f"watts-strogatz-{n}")
    half = nearest_neighbors // 2
    undirected_edges: set[tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, half + 1):
            v = (u + offset) % n
            undirected_edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for u, v in sorted(undirected_edges):
        if rng.random() < rewire_probability:
            # Rewire the far endpoint to a uniformly random non-neighbour.
            for _ in range(8):  # bounded retries keep the generator total
                w = int(rng.integers(0, n))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in undirected_edges and candidate not in rewired:
                    rewired.add(candidate)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    for u, v in sorted(rewired):
        graph.add_edge(u, v, probability=probability)
        graph.add_edge(v, u, probability=probability)
    return graph


def powerlaw_cluster_graph(
    n: int,
    attachment: int,
    triangle_probability: float,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """Holme–Kim power-law graph with tunable clustering, bidirected.

    Like Barabási–Albert, but after each preferential attachment a triangle is
    closed with probability ``triangle_probability``.  The extra clustering
    better matches collaboration networks such as NetHEPT/HepPh/DBLP.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise ConfigurationError(
            f"triangle_probability must lie in [0, 1], got {triangle_probability}"
        )
    if attachment < 1 or n <= attachment:
        raise ConfigurationError(
            f"need 1 <= attachment < n, got attachment={attachment}, n={n}"
        )
    rng = ensure_rng(seed)
    graph = _empty(n, f"powerlaw-cluster-{n}-{attachment}")
    repeated_targets: list[int] = list(range(attachment))
    for u in range(attachment):
        for v in range(u + 1, attachment):
            graph.add_edge(u, v, probability=probability)
            graph.add_edge(v, u, probability=probability)
    for new_node in range(attachment, n):
        # Draw-order list, set for membership only — see barabasi_albert.
        targets: list[int] = []
        targets_seen: set[int] = set()
        last_target: Optional[int] = None
        while len(targets) < attachment:
            close_triangle = (
                last_target is not None
                and rng.random() < triangle_probability
                and graph.out_degree(last_target) > 0
            )
            if close_triangle:
                neighbors = list(graph.successors(last_target))
                pick = neighbors[int(rng.integers(0, len(neighbors)))]
            else:
                pick = repeated_targets[int(rng.integers(0, len(repeated_targets)))]
            if pick != new_node and pick not in targets_seen:
                targets_seen.add(pick)
                targets.append(pick)
                last_target = pick
        for target in targets:
            graph.add_edge(new_node, target, probability=probability)
            graph.add_edge(target, new_node, probability=probability)
            repeated_targets.extend((new_node, target))
    return graph


def forest_fire_graph(
    n: int,
    forward_probability: float = 0.35,
    backward_probability: float = 0.2,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """Leskovec's forest-fire model — directed, densifying, small diameter.

    Used for the synthetic stand-ins of the large directed graphs (socLive,
    Twitter) because it produces shrinking-diameter, heavy-tailed directed
    topologies.
    """
    for name, value in (("forward_probability", forward_probability),
                        ("backward_probability", backward_probability)):
        if not 0.0 <= value < 1.0:
            raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
    rng = ensure_rng(seed)
    graph = _empty(n, f"forest-fire-{n}")
    if n == 0:
        return graph
    for new_node in range(1, n):
        ambassador = int(rng.integers(0, new_node))
        visited: set[int] = {new_node}
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            graph.add_edge(new_node, current, probability=probability)
            # Geometric number of forward / backward links to spread to.
            out_links = [v for v in graph.successors(current) if v not in visited]
            in_links = [v for v in graph.predecessors(current) if v not in visited]
            n_forward = _geometric(rng, forward_probability)
            n_backward = _geometric(rng, backward_probability)
            rng.shuffle(out_links)
            rng.shuffle(in_links)
            frontier.extend(out_links[:n_forward])
            frontier.extend(in_links[:n_backward])
    return graph


def stochastic_block_graph(
    block_sizes: list[int],
    within_probability: float,
    between_probability: float,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
) -> DiGraph:
    """Directed stochastic block model with dense blocks and sparse cross edges."""
    for name, value in (("within_probability", within_probability),
                        ("between_probability", between_probability)):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    rng = ensure_rng(seed)
    n = sum(block_sizes)
    graph = _empty(n, f"sbm-{len(block_sizes)}x")
    block_of = np.zeros(n, dtype=np.int64)
    start = 0
    for block, size in enumerate(block_sizes):
        block_of[start:start + size] = block
        start += size
    for u in range(n):
        draws = rng.random(n)
        for v in range(n):
            if u == v:
                continue
            threshold = (
                within_probability if block_of[u] == block_of[v] else between_probability
            )
            if draws[v] < threshold:
                graph.add_edge(u, v, probability=probability)
    return graph


# --------------------------------------------------------------------------
# structures used by the theoretical analysis and tests


def random_tree(
    n: int,
    seed: RandomState = None,
    max_children: int = 4,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
    random_probabilities: bool = False,
) -> DiGraph:
    """Random rooted out-tree on ``n`` nodes (root is node 0).

    Trees are the structures on which the EaSyIM score assignment is exact
    (Conclusion 2 in the paper), so they anchor correctness tests.
    """
    if max_children < 1:
        raise ConfigurationError(f"max_children must be >= 1, got {max_children}")
    rng = ensure_rng(seed)
    graph = _empty(n, f"random-tree-{n}")
    children_count = {0: 0}
    available = [0]
    for node in range(1, n):
        parent_pos = int(rng.integers(0, len(available)))
        parent = available[parent_pos]
        p = float(rng.uniform(0.05, 0.9)) if random_probabilities else probability
        graph.add_edge(parent, node, probability=p)
        children_count[parent] += 1
        if children_count[parent] >= max_children:
            available.pop(parent_pos)
        children_count[node] = 0
        available.append(node)
    return graph


def random_dag(
    n: int,
    edge_probability: float,
    seed: RandomState = None,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
    random_probabilities: bool = False,
) -> DiGraph:
    """Random DAG: nodes are topologically ordered ``0..n-1``, edges go forward."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    rng = ensure_rng(seed)
    graph = _empty(n, f"random-dag-{n}")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                p = float(rng.uniform(0.05, 0.9)) if random_probabilities else probability
                graph.add_edge(u, v, probability=p)
    return graph


def _geometric(rng: np.random.Generator, p: float) -> int:
    """Number of successes before failure for a burn probability ``p``."""
    if p <= 0.0:
        return 0
    # Mean p / (1 - p), matching the forest-fire formulation.
    return int(rng.geometric(1.0 - p)) - 1
