"""Constructors converting external representations into :class:`DiGraph`.

The paper's experimental setup (Sec. 4) turns every undirected benchmark graph
into a directed one by adding arcs in both directions; :func:`make_bidirectional`
implements exactly that convention.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.exceptions import GraphConstructionError
from repro.graphs.digraph import (
    DEFAULT_INFLUENCE_PROBABILITY,
    DEFAULT_INTERACTION_PROBABILITY,
    DiGraph,
    Node,
)

EdgeSpec = Union[Tuple[Node, Node], Tuple[Node, Node, float]]


def from_edge_list(
    edges: Iterable[EdgeSpec],
    directed: bool = True,
    probability: float = DEFAULT_INFLUENCE_PROBABILITY,
    interaction: float = DEFAULT_INTERACTION_PROBABILITY,
    name: str = "",
) -> DiGraph:
    """Build a graph from ``(u, v)`` or ``(u, v, probability)`` tuples.

    Parameters
    ----------
    edges:
        Iterable of 2-tuples or 3-tuples.  A third element, when present,
        overrides the default influence probability for that edge.
    directed:
        When ``False``, each listed edge also adds the reverse arc — the
        convention the paper applies to undirected SNAP graphs.
    probability, interaction:
        Defaults applied to every edge that does not specify its own value.
    """
    graph = DiGraph(name=name)
    for edge in edges:
        if len(edge) == 2:
            source, target = edge
            p = probability
        elif len(edge) == 3:
            source, target, p = edge  # type: ignore[misc]
        else:
            raise GraphConstructionError(f"edges must be 2- or 3-tuples, got {edge!r}")
        graph.add_edge(source, target, probability=p, interaction=interaction)
        if not directed:
            graph.add_edge(target, source, probability=p, interaction=interaction)
    return graph


def make_bidirectional(graph: DiGraph) -> DiGraph:
    """Return a copy of ``graph`` with the reverse of every edge added.

    Reverse edges copy the attributes of the forward edge; existing reverse
    edges are left untouched.
    """
    result = graph.copy()
    for source, target, data in list(graph.edges()):
        if not result.has_edge(target, source):
            result.add_edge(
                target,
                source,
                probability=data.probability,
                weight=data.weight,
                interaction=data.interaction,
            )
    return result


def from_networkx(nx_graph: object, name: str = "") -> DiGraph:
    """Convert a :mod:`networkx` (Di)Graph into a :class:`DiGraph`.

    Recognised attribute names: ``probability``/``p`` and ``interaction``/
    ``phi`` on edges, ``opinion`` and ``threshold`` on nodes.  Undirected
    networkx graphs are bidirected, mirroring the paper's convention.
    """
    graph = DiGraph(name=name or getattr(nx_graph, "name", ""))
    for node, attrs in nx_graph.nodes(data=True):  # type: ignore[attr-defined]
        graph.add_node(node)
        if "opinion" in attrs:
            graph.set_opinion(node, attrs["opinion"])
        if "threshold" in attrs:
            graph.set_threshold(node, attrs["threshold"])
    directed = bool(getattr(nx_graph, "is_directed", lambda: True)())
    for source, target, attrs in nx_graph.edges(data=True):  # type: ignore[attr-defined]
        probability = attrs.get("probability", attrs.get("p", DEFAULT_INFLUENCE_PROBABILITY))
        interaction = attrs.get("interaction", attrs.get("phi", DEFAULT_INTERACTION_PROBABILITY))
        weight = attrs.get("weight", 0.0)
        graph.add_edge(source, target, probability=probability,
                       weight=weight, interaction=interaction)
        if not directed:
            graph.add_edge(target, source, probability=probability,
                           weight=weight, interaction=interaction)
    return graph


def to_networkx(graph: DiGraph):
    """Convert a :class:`DiGraph` into a :class:`networkx.DiGraph`.

    Requires :mod:`networkx` to be installed; it is an optional dependency
    used only for interoperability and plotting.
    """
    import networkx as nx

    nx_graph = nx.DiGraph(name=graph.name)
    for node in graph.nodes():
        data = graph.node_data(node)
        attrs = {}
        if data.opinion is not None:
            attrs["opinion"] = data.opinion
        if data.threshold is not None:
            attrs["threshold"] = data.threshold
        nx_graph.add_node(node, **attrs)
    for source, target, data in graph.edges():
        nx_graph.add_edge(
            source,
            target,
            probability=data.probability,
            weight=data.weight,
            interaction=data.interaction,
        )
    return nx_graph


def relabel_to_integers(graph: DiGraph) -> Tuple[DiGraph, dict]:
    """Return a copy with nodes relabelled ``0..n-1`` plus the label mapping."""
    mapping = {node: i for i, node in enumerate(graph.nodes())}
    relabelled = DiGraph(name=graph.name)
    for node in graph.nodes():
        data = graph.node_data(node)
        new = mapping[node]
        relabelled.add_node(new)
        if data.opinion is not None:
            relabelled.set_opinion(new, data.opinion)
        if data.threshold is not None:
            relabelled.set_threshold(new, data.threshold)
    for source, target, data in graph.edges():
        relabelled.add_edge(
            mapping[source],
            mapping[target],
            probability=data.probability,
            weight=data.weight,
            interaction=data.interaction,
        )
    return relabelled, mapping
