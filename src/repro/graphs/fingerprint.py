"""Stable content fingerprints for graphs.

The serving layer persists influence indexes (RR-sketch collections) to disk
and reloads them across processes; an index is only meaningful for the exact
graph it was sampled on.  :func:`graph_fingerprint` provides the validation
key: a SHA-256 digest over the compiled CSR arrays (topology), every edge
annotation (IC probability, LT weight, interaction) and every node
annotation (opinion, threshold), plus the node labels themselves.

The digest is computed on the :class:`~repro.graphs.digraph.CompiledGraph`
snapshot, so it is independent of *how* a graph was built (``add_edge``
order does not matter beyond node-insertion order, which the compiled
labels capture) and identical across processes and platforms of the same
endianness for the same content.  Any change that could alter sampling —
adding or removing a node or edge, or editing any probability, weight,
interaction, opinion or threshold — changes the fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import CompiledGraph, DiGraph

#: Bumped when the hashed byte layout changes, so old digests never
#: accidentally validate against a new scheme.
_FINGERPRINT_SCHEME = b"repro-graph-fingerprint-v1"

#: Label types whose repr() is content-determined and therefore stable
#: across processes (tuples are accepted recursively).
_STABLE_LABEL_TYPES = (int, str, float, bool, bytes, type(None))


def _is_stable_label(label) -> bool:
    if isinstance(label, _STABLE_LABEL_TYPES):
        return True
    if isinstance(label, tuple):
        return all(_is_stable_label(item) for item in label)
    return False


def _update_array(digest: "hashlib._Hash", array: np.ndarray, dtype) -> None:
    """Feed ``array`` into ``digest`` with a length prefix.

    Arrays are normalised to a fixed dtype in C order so the digest depends
    only on values, never on the in-memory layout of the source array.
    """
    data = np.ascontiguousarray(array, dtype=dtype)
    digest.update(np.int64(data.size).tobytes())
    digest.update(data.tobytes())


def graph_fingerprint(graph: Union[DiGraph, CompiledGraph]) -> str:
    """Hex SHA-256 content fingerprint of ``graph``.

    Accepts either a mutable :class:`DiGraph` (compiled internally) or an
    existing :class:`CompiledGraph` when the caller wants to amortise
    compilation.  Two graphs share a fingerprint exactly when their compiled
    snapshots are identical: same labels in the same order, same edges, and
    same node/edge annotations.
    """
    compiled = graph.compile() if isinstance(graph, DiGraph) else graph
    if compiled._fingerprint is not None:
        return compiled._fingerprint
    digest = hashlib.sha256(_FINGERPRINT_SCHEME)
    digest.update(np.int64(compiled.number_of_nodes).tobytes())
    digest.update(np.int64(compiled.number_of_edges).tobytes())
    # Labels are encoded through repr(), length-prefixed so concatenations
    # cannot collide.  Only primitives (and tuples of primitives) are
    # accepted: a default object repr embeds a memory address, which would
    # make the digest process-local — every artifact would then fail
    # validation with a misleading "graph content changed" error.
    for label in compiled.labels:
        if not _is_stable_label(label):
            raise GraphError(
                f"cannot fingerprint a graph whose node labels are "
                f"{type(label).__name__!r}: label reprs must be stable "
                "across processes (use ints, strings or tuples of them)"
            )
        encoded = repr(label).encode("utf-8")
        digest.update(np.int64(len(encoded)).tobytes())
        digest.update(encoded)
    _update_array(digest, compiled.out_indptr, np.int64)
    _update_array(digest, compiled.out_indices, np.int64)
    _update_array(digest, compiled.out_probability, np.float64)
    _update_array(digest, compiled.out_weight, np.float64)
    _update_array(digest, compiled.out_interaction, np.float64)
    _update_array(digest, compiled.opinions, np.float64)
    # NaN thresholds ("draw per simulation") have a fixed bit pattern after
    # the float64 normalisation, so they hash stably too.
    _update_array(digest, compiled.thresholds, np.float64)
    compiled._fingerprint = digest.hexdigest()
    return compiled._fingerprint
