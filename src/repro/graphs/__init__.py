"""Graph substrate: directed graphs, generators, IO, statistics and gadgets."""

from repro.graphs.digraph import DiGraph, EdgeData, CompiledGraph
from repro.graphs.builders import (
    from_edge_list,
    from_networkx,
    make_bidirectional,
    to_networkx,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    path_graph,
    powerlaw_cluster_graph,
    random_dag,
    random_kout_graph,
    random_tree,
    star_graph,
    stochastic_block_graph,
    watts_strogatz_graph,
)
from repro.graphs.fingerprint import graph_fingerprint
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.stats import GraphStats, compute_stats, effective_diameter
from repro.graphs.special import (
    figure1_example_graph,
    submodularity_counterexample,
    set_cover_reduction_graph,
)

__all__ = [
    "DiGraph",
    "EdgeData",
    "CompiledGraph",
    "from_edge_list",
    "from_networkx",
    "to_networkx",
    "make_bidirectional",
    "barabasi_albert_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "forest_fire_graph",
    "path_graph",
    "powerlaw_cluster_graph",
    "random_dag",
    "random_kout_graph",
    "random_tree",
    "star_graph",
    "stochastic_block_graph",
    "watts_strogatz_graph",
    "graph_fingerprint",
    "read_edge_list",
    "write_edge_list",
    "GraphStats",
    "compute_stats",
    "effective_diameter",
    "figure1_example_graph",
    "submodularity_counterexample",
    "set_cover_reduction_graph",
]
