"""Graph gadgets defined in the paper.

Three constructions are reproduced exactly:

* :func:`figure1_example_graph` — the 4-node Twitter snapshot from Figure 1 /
  Examples 1–2, used in the quickstart example and as a ground-truth fixture
  (the paper works out the expected spread and opinion spread by hand).
* :func:`submodularity_counterexample` — the bipartite gadget of Figure 3a
  proving the effective opinion spread is neither monotone nor submodular
  (Lemma 2).
* :func:`set_cover_reduction_graph` — the layered gadget of Figure 3b reducing
  SET-COVER to MEO (Theorem 1).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiGraph


def figure1_example_graph() -> DiGraph:
    """The running example of Figure 1.

    Nodes ``"A"``, ``"B"``, ``"C"``, ``"D"`` with opinions
    ``o_A=0.8, o_B=0.0, o_C=0.6, o_D=-0.3`` and edges

    ======  =====  =====
    edge    p      phi
    ======  =====  =====
    B -> A  0.1    0.7
    B -> C  0.1    0.8
    A -> D  0.8    0.9
    C -> D  0.9    0.1
    ======  =====  =====

    Example 2 derives ``sigma(A)=0.8``, ``sigma(C)=0.9`` under IC and
    ``sigma_o(A)=0.136``, ``sigma_o(C)=-0.351`` under OI, so the IC-optimal
    seed is ``C`` while the OI-optimal seed is ``A``.
    """
    graph = DiGraph(name="figure1")
    graph.add_node("A", opinion=0.8)
    graph.add_node("B", opinion=0.0)
    graph.add_node("C", opinion=0.6)
    graph.add_node("D", opinion=-0.3)
    graph.add_edge("B", "A", probability=0.1, interaction=0.7)
    graph.add_edge("B", "C", probability=0.1, interaction=0.8)
    graph.add_edge("A", "D", probability=0.8, interaction=0.9)
    graph.add_edge("C", "D", probability=0.9, interaction=0.1)
    return graph


def submodularity_counterexample(nx: int = 3) -> DiGraph:
    """The Figure 3a bipartite gadget showing MEO is not submodular.

    ``nx`` source nodes ``s_1..s_nx`` (layer X, opinion +1) each point to two
    dedicated targets in layer Y (opinion 0), with ``p = 1`` on every edge.
    Interaction is 1 on every edge except those leaving the *last* source,
    whose interactions are 0 — so activating the last source flips its two
    targets to opinion −1/2 and the effective spread sequence over seed sets
    ``{s_i} → {s_i, s_nx} → {s_i, s_nx, s_j}`` goes ``1 → 0 → 1``
    (Lemma 2 in the paper).

    Node labels: sources are ``("x", i)``, targets are ``("y", j)``.
    """
    if nx < 2:
        raise ConfigurationError(f"the counterexample needs nx >= 2 sources, got {nx}")
    graph = DiGraph(name=f"submodularity-counterexample-{nx}")
    for i in range(1, nx + 1):
        graph.add_node(("x", i), opinion=1.0)
    for j in range(1, 2 * nx + 1):
        graph.add_node(("y", j), opinion=0.0)
    for i in range(1, nx + 1):
        interaction = 0.0 if i == nx else 1.0
        for j in (2 * i - 1, 2 * i):
            graph.add_edge(("x", i), ("y", j), probability=1.0, interaction=interaction)
    return graph


def set_cover_reduction_graph(
    universe_size: int,
    subsets: Sequence[Sequence[int]],
) -> DiGraph:
    """The Figure 3b gadget reducing SET-COVER to MEO.

    Parameters
    ----------
    universe_size:
        ``n`` — number of universe elements ``q_1..q_n``.
    subsets:
        ``m`` subsets, each a sequence of element indices in ``1..n``.

    Construction (all edges have ``p = 1`` and ``phi = 1``; ``lambda = 1``):

    * layer 1: one node ``("x", i)`` per subset ``R_i``, opinion 0;
    * layer 2: one node ``("y", j)`` per element ``q_j``, opinion ``1/n``;
    * layer 3: ``m + n - 2`` nodes ``("z", t)``, opinion ``-1/(2n)``;
    * a sink ``("s",)`` with opinion ``-1 + 1/n``;
    * edge ``x_i -> y_j`` iff ``q_j ∈ R_i``; every ``y`` points to every ``z``;
      every ``z`` points to the sink.

    The paper shows a size-``k`` seed set drawn from layer 1 achieves effective
    opinion spread ``> 0`` iff the corresponding subsets cover the universe.
    """
    if universe_size < 1:
        raise ConfigurationError(f"universe_size must be >= 1, got {universe_size}")
    if not subsets:
        raise ConfigurationError("at least one subset is required")
    for i, subset in enumerate(subsets, start=1):
        for element in subset:
            if not 1 <= element <= universe_size:
                raise ConfigurationError(
                    f"subset {i} references element {element}, which is outside "
                    f"1..{universe_size}"
                )
    n = universe_size
    m = len(subsets)
    graph = DiGraph(name=f"set-cover-reduction-{m}x{n}")

    for i in range(1, m + 1):
        graph.add_node(("x", i), opinion=0.0)
    for j in range(1, n + 1):
        graph.add_node(("y", j), opinion=1.0 / n)
    z_count = m + n - 2
    for t in range(1, z_count + 1):
        graph.add_node(("z", t), opinion=-1.0 / (2.0 * n))
    sink = ("s",)
    graph.add_node(sink, opinion=-1.0 + 1.0 / n)

    for i, subset in enumerate(subsets, start=1):
        for element in subset:
            graph.add_edge(("x", i), ("y", element), probability=1.0, interaction=1.0)
    for j in range(1, n + 1):
        for t in range(1, z_count + 1):
            graph.add_edge(("y", j), ("z", t), probability=1.0, interaction=1.0)
    for t in range(1, z_count + 1):
        graph.add_edge(("z", t), sink, probability=1.0, interaction=1.0)
    return graph
