"""Graph statistics reported in Table 2 of the paper.

The table lists, per dataset: number of nodes ``n``, number of edges ``m``,
directed/undirected type, average degree and the 90-percentile effective
diameter.  :func:`compute_stats` reproduces those columns for any
:class:`DiGraph`; the effective diameter is estimated by BFS from a sample of
source nodes, which is the standard approach for graphs too large for an
all-pairs computation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiGraph, Node
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class GraphStats:
    """Summary statistics matching the columns of Table 2."""

    name: str
    nodes: int
    edges: int
    average_degree: float
    effective_diameter: float
    max_out_degree: int
    max_in_degree: int
    weakly_connected_components: int

    def as_row(self) -> dict:
        """Row dictionary used by the Table 2 benchmark harness."""
        return {
            "dataset": self.name,
            "n": self.nodes,
            "m": self.edges,
            "avg_degree": round(self.average_degree, 2),
            "90pct_diameter": round(self.effective_diameter, 1),
        }


def bfs_distances(graph: DiGraph, source: Node) -> dict[Node, int]:
    """Unweighted shortest-path distances from ``source`` along out-edges."""
    distances = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        current = queue.popleft()
        next_distance = distances[current] + 1
        for neighbor in graph.successors(current):
            if neighbor not in distances:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return distances


def effective_diameter(
    graph: DiGraph,
    percentile: float = 90.0,
    sample_size: int = 64,
    seed: RandomState = None,
) -> float:
    """Estimate the ``percentile`` effective diameter.

    The effective diameter is the smallest distance ``d`` such that the given
    percentile of connected node pairs are within distance ``d``.  Distances
    are collected by BFS from a random sample of sources (all sources when the
    graph has at most ``sample_size`` nodes), and the percentile is
    interpolated between integer distances as is conventional.
    """
    if graph.number_of_nodes == 0:
        return 0.0
    rng = ensure_rng(seed)
    nodes = list(graph.nodes())
    if len(nodes) <= sample_size:
        sources = nodes
    else:
        positions = rng.choice(len(nodes), size=sample_size, replace=False)
        sources = [nodes[i] for i in positions]

    all_distances: list[int] = []
    for source in sources:
        distances = bfs_distances(graph, source)
        all_distances.extend(d for d in distances.values() if d > 0)
    if not all_distances:
        return 0.0
    values = np.sort(np.asarray(all_distances, dtype=np.float64))
    rank = percentile / 100.0 * (len(values) - 1)
    lower = int(np.floor(rank))
    upper = int(np.ceil(rank))
    if lower == upper:
        return float(values[lower])
    fraction = rank - lower
    return float(values[lower] * (1 - fraction) + values[upper] * fraction)


def weakly_connected_components(graph: DiGraph) -> list[set[Node]]:
    """Weakly connected components (edge directions ignored)."""
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        queue: deque[Node] = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in graph.successors(current):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
            for neighbor in graph.predecessors(current):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        seen.update(component)
        components.append(component)
    return components


def strongly_connected_components(graph: DiGraph) -> list[set[Node]]:
    """Strongly connected components (iterative Tarjan)."""
    index_counter = 0
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[set[Node]] = []

    for root in graph.nodes():
        if root in index:
            continue
        work = [(root, iter(graph.successors(root)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def is_dag(graph: DiGraph) -> bool:
    """True when the graph has no directed cycle."""
    return all(len(component) == 1 for component in strongly_connected_components(graph))


def degree_histogram(graph: DiGraph, direction: str = "out") -> dict[int, int]:
    """Histogram ``degree -> count`` over nodes for the chosen direction."""
    if direction not in ("out", "in"):
        raise ConfigurationError(f"direction must be 'out' or 'in', got {direction!r}")
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.out_degree(node) if direction == "out" else graph.in_degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def compute_stats(
    graph: DiGraph,
    name: Optional[str] = None,
    diameter_sample_size: int = 64,
    seed: RandomState = 0,
) -> GraphStats:
    """Compute the Table 2 statistics for ``graph``."""
    n = graph.number_of_nodes
    m = graph.number_of_edges
    average_degree = m / n if n else 0.0
    max_out = max((graph.out_degree(v) for v in graph.nodes()), default=0)
    max_in = max((graph.in_degree(v) for v in graph.nodes()), default=0)
    return GraphStats(
        name=name or graph.name or "unnamed",
        nodes=n,
        edges=m,
        average_degree=average_degree,
        effective_diameter=effective_diameter(
            graph, sample_size=diameter_sample_size, seed=seed
        ),
        max_out_degree=max_out,
        max_in_degree=max_in,
        weakly_connected_components=len(weakly_connected_components(graph)),
    )
