"""Directed graph data structures used throughout the library.

Two representations are provided:

* :class:`DiGraph` — a mutable adjacency-map graph with per-node attributes
  (opinion ``o``, activation threshold ``theta``) and per-edge attributes
  (influence probability ``p``, LT weight ``w``, interaction probability
  ``phi``).  This is the structure users build, annotate and pass to the
  public API.
* :class:`CompiledGraph` — an immutable CSR (compressed sparse row) snapshot
  with numpy arrays for both out- and in-adjacency.  The Monte-Carlo
  simulation engine and the score-assignment algorithms operate on this view,
  which keeps the per-node overhead at a few machine words and matches the
  paper's "linear space" requirement.

The attribute names mirror the paper's notation (Table 1): ``p`` for the IC
influence probability, ``w`` for the LT edge weight, ``phi`` for the
interaction probability, ``opinion`` for :math:`o_v` and ``threshold`` for
:math:`\\theta_v`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError

Node = Hashable

#: Default IC influence probability used by the paper (Sec. 4, "Parameters").
DEFAULT_INFLUENCE_PROBABILITY = 0.1

#: Default interaction probability when a graph has not been annotated.
DEFAULT_INTERACTION_PROBABILITY = 1.0


@dataclass
class EdgeData:
    """Attributes attached to a directed edge ``u -> v``.

    Attributes
    ----------
    probability:
        IC influence probability :math:`p_{(u,v)} \\in [0, 1]`.
    weight:
        LT edge weight :math:`w_{(u,v)} \\in [0, 1]`.
    interaction:
        Interaction probability :math:`\\varphi_{(u,v)} \\in [0, 1]` — the
        fraction of times ``v`` adopts information from ``u`` with the same
        orientation as ``u`` (Def. 5 in the paper).
    """

    probability: float = DEFAULT_INFLUENCE_PROBABILITY
    weight: float = 0.0
    interaction: float = DEFAULT_INTERACTION_PROBABILITY

    def copy(self) -> "EdgeData":
        return EdgeData(self.probability, self.weight, self.interaction)


@dataclass
class NodeData:
    """Attributes attached to a node.

    Attributes
    ----------
    opinion:
        Personal opinion :math:`o_v \\in [-1, 1]` towards the content being
        diffused (Def. 4).  ``None`` until the graph has been annotated.
    threshold:
        LT activation threshold :math:`\\theta_v \\in [0, 1]`.  ``None`` means
        "draw uniformly at random per simulation", which is the conventional
        randomised-threshold LT model used in the paper.
    """

    opinion: Optional[float] = None
    threshold: Optional[float] = None

    def copy(self) -> "NodeData":
        return NodeData(self.opinion, self.threshold)


class DiGraph:
    """A mutable directed graph with IM-specific node and edge attributes.

    Nodes may be any hashable objects; most of the library uses consecutive
    integers.  Self-loops are rejected because none of the diffusion models
    give them meaning.  Parallel edges are not supported; adding an existing
    edge overwrites its attributes.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._succ: Dict[Node, Dict[Node, EdgeData]] = {}
        self._pred: Dict[Node, Dict[Node, EdgeData]] = {}
        self._node_data: Dict[Node, NodeData] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node, opinion: Optional[float] = None,
                 threshold: Optional[float] = None) -> Node:
        """Add ``node`` (idempotent) and optionally set its attributes."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._node_data[node] = NodeData()
        data = self._node_data[node]
        if opinion is not None:
            data.opinion = _validate_opinion(opinion)
        if threshold is not None:
            data.threshold = _validate_unit(threshold, "threshold")
        return node

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        self._require_node(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]
        del self._node_data[node]

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def nodes(self) -> Iterator[Node]:
        """Iterate over the nodes in insertion order."""
        return iter(self._succ)

    def node_data(self, node: Node) -> NodeData:
        self._require_node(node)
        return self._node_data[node]

    # ----------------------------------------------------------------- edges

    def add_edge(self, source: Node, target: Node,
                 probability: float = DEFAULT_INFLUENCE_PROBABILITY,
                 weight: float = 0.0,
                 interaction: float = DEFAULT_INTERACTION_PROBABILITY) -> None:
        """Add the directed edge ``source -> target`` (endpoints auto-added)."""
        if source == target:
            raise GraphError(f"self-loops are not supported (node {source!r})")
        self.add_node(source)
        self.add_node(target)
        data = EdgeData(
            probability=_validate_unit(probability, "probability"),
            weight=_validate_unit(weight, "weight"),
            interaction=_validate_unit(interaction, "interaction"),
        )
        if target not in self._succ[source]:
            self._edge_count += 1
        self._succ[source][target] = data
        self._pred[target][source] = data

    def add_edges_from(
        self, edges: Iterable[Tuple[Node, Node]], **attributes: float
    ) -> None:
        for source, target in edges:
            self.add_edge(source, target, **attributes)

    def remove_edge(self, source: Node, target: Node) -> None:
        self._require_edge(source, target)
        del self._succ[source][target]
        del self._pred[target][source]
        self._edge_count -= 1

    def has_edge(self, source: Node, target: Node) -> bool:
        return source in self._succ and target in self._succ[source]

    def edge_data(self, source: Node, target: Node) -> EdgeData:
        self._require_edge(source, target)
        return self._succ[source][target]

    def edges(self) -> Iterator[Tuple[Node, Node, EdgeData]]:
        """Iterate over ``(source, target, EdgeData)`` triples."""
        for source, targets in self._succ.items():
            for target, data in targets.items():
                yield source, target, data

    # ----------------------------------------------------------- neighbours

    def successors(self, node: Node) -> Iterator[Node]:
        """Out-neighbours of ``node`` (``Out(u)`` in the paper)."""
        self._require_node(node)
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        """In-neighbours of ``node`` (``In(v)`` in the paper)."""
        self._require_node(node)
        return iter(self._pred[node])

    def out_edges(self, node: Node) -> Iterator[Tuple[Node, EdgeData]]:
        self._require_node(node)
        return iter(self._succ[node].items())

    def in_edges(self, node: Node) -> Iterator[Tuple[Node, EdgeData]]:
        self._require_node(node)
        return iter(self._pred[node].items())

    def out_degree(self, node: Node) -> int:
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        self._require_node(node)
        return len(self._pred[node])

    # ------------------------------------------------------------ attributes

    def set_opinion(self, node: Node, opinion: float) -> None:
        """Set the personal opinion :math:`o_v \\in [-1, 1]` of ``node``."""
        self._require_node(node)
        self._node_data[node].opinion = _validate_opinion(opinion)

    def opinion(self, node: Node) -> Optional[float]:
        self._require_node(node)
        return self._node_data[node].opinion

    def set_threshold(self, node: Node, threshold: float) -> None:
        self._require_node(node)
        self._node_data[node].threshold = _validate_unit(threshold, "threshold")

    def threshold(self, node: Node) -> Optional[float]:
        self._require_node(node)
        return self._node_data[node].threshold

    def set_interaction(self, source: Node, target: Node, interaction: float) -> None:
        """Set the interaction probability :math:`\\varphi_{(u,v)}`."""
        self.edge_data(source, target).interaction = _validate_unit(
            interaction, "interaction"
        )

    def set_probability(self, source: Node, target: Node, probability: float) -> None:
        self.edge_data(source, target).probability = _validate_unit(
            probability, "probability"
        )

    def set_weight(self, source: Node, target: Node, weight: float) -> None:
        self.edge_data(source, target).weight = _validate_unit(weight, "weight")

    def has_opinions(self) -> bool:
        """True when every node carries an opinion annotation."""
        return all(data.opinion is not None for data in self._node_data.values())

    # -------------------------------------------------- bulk parameterisation

    def set_uniform_probabilities(self, probability: float) -> None:
        """Assign the same IC probability ``p`` to every edge (paper: p=0.1)."""
        probability = _validate_unit(probability, "probability")
        for _, _, data in self.edges():
            data.probability = probability

    def set_weighted_cascade_probabilities(self) -> None:
        """Assign ``p_(u,v) = 1 / in_degree(v)`` (the WC model, Sec. 3.3)."""
        for _, target, data in self.edges():
            data.probability = 1.0 / self.in_degree(target)

    def set_linear_threshold_weights(self) -> None:
        """Assign ``w_(u,v) = 1 / in_degree(v)`` (conventional LT weights)."""
        for _, target, data in self.edges():
            data.weight = 1.0 / self.in_degree(target)

    # --------------------------------------------------------------- queries

    @property
    def number_of_nodes(self) -> int:
        return len(self._succ)

    @property
    def number_of_edges(self) -> int:
        return self._edge_count

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<DiGraph{label} with {self.number_of_nodes} nodes and "
            f"{self.number_of_edges} edges>"
        )

    # ----------------------------------------------------------------- copy

    def copy(self) -> "DiGraph":
        """Return a deep copy (attributes included)."""
        clone = DiGraph(name=self.name)
        for node in self.nodes():
            data = self._node_data[node]
            clone.add_node(node)
            clone._node_data[node] = data.copy()
        for source, target, data in self.edges():
            clone.add_edge(
                source,
                target,
                probability=data.probability,
                weight=data.weight,
                interaction=data.interaction,
            )
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced on ``nodes`` (attributes copied)."""
        ordered = list(nodes)
        keep = set(ordered)
        # Report the first missing node in *input* order; iterating the set
        # would pick one by hash-table layout, varying run to run.
        missing = [node for node in ordered if node not in self]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = DiGraph(name=self.name)
        for node in self.nodes():
            if node in keep:
                sub.add_node(node)
                sub._node_data[node] = self._node_data[node].copy()
        for source, target, data in self.edges():
            if source in keep and target in keep:
                sub.add_edge(
                    source,
                    target,
                    probability=data.probability,
                    weight=data.weight,
                    interaction=data.interaction,
                )
        return sub

    def reverse(self) -> "DiGraph":
        """Return a copy with every edge direction flipped."""
        rev = DiGraph(name=self.name)
        for node in self.nodes():
            rev.add_node(node)
            rev._node_data[node] = self._node_data[node].copy()
        for source, target, data in self.edges():
            rev.add_edge(
                target,
                source,
                probability=data.probability,
                weight=data.weight,
                interaction=data.interaction,
            )
        return rev

    # ------------------------------------------------------------- compile

    def compile(self) -> "CompiledGraph":
        """Freeze the graph into a :class:`CompiledGraph` CSR snapshot."""
        return CompiledGraph.from_digraph(self)

    # ------------------------------------------------------------- private

    def _require_node(self, node: Node) -> None:
        if node not in self._succ:
            raise NodeNotFoundError(node)

    def _require_edge(self, source: Node, target: Node) -> None:
        if source not in self._succ or target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)


class CompiledGraph:
    """Immutable CSR snapshot of a :class:`DiGraph`.

    Nodes are re-indexed to ``0..n-1`` (the original labels are kept in
    :attr:`labels`).  Both forward (out-edges) and reverse (in-edges) CSR
    structures are materialised because the diffusion models walk out-edges
    while the RIS-based algorithms (TIM+/IMM) and LT simulation walk in-edges.
    """

    __slots__ = (
        "labels",
        "index_of",
        "out_indptr",
        "out_indices",
        "out_probability",
        "out_interaction",
        "out_weight",
        "in_indptr",
        "in_indices",
        "in_probability",
        "in_interaction",
        "in_weight",
        "opinions",
        "thresholds",
        "_fingerprint",
        "_edge_sources",
        "_resolved_probabilities",
        "_out_psi",
        "_out_to_in_position",
    )

    def __init__(
        self,
        labels: Sequence[Node],
        index_of: Mapping[Node, int],
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_probability: np.ndarray,
        out_interaction: np.ndarray,
        out_weight: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_probability: np.ndarray,
        in_interaction: np.ndarray,
        in_weight: np.ndarray,
        opinions: np.ndarray,
        thresholds: np.ndarray,
    ) -> None:
        self.labels = list(labels)
        self.index_of = dict(index_of)
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.out_probability = out_probability
        self.out_interaction = out_interaction
        self.out_weight = out_weight
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.in_probability = in_probability
        self.in_interaction = in_interaction
        self.in_weight = in_weight
        self.opinions = opinions
        self.thresholds = thresholds
        # Content-fingerprint cache; compiled graphs are immutable, so the
        # digest is computed at most once (see repro.graphs.fingerprint).
        self._fingerprint: Optional[str] = None
        # Graph-static derived arrays, each materialised at most once (the
        # score engines and scalar diffusion models share them).
        self._edge_sources: Optional[np.ndarray] = None
        self._resolved_probabilities: Dict[str, np.ndarray] = {}
        self._out_psi: Optional[np.ndarray] = None
        self._out_to_in_position: Optional[np.ndarray] = None

    # ------------------------------------------------------------ factory

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CompiledGraph":
        labels = list(graph.nodes())
        index_of = {label: i for i, label in enumerate(labels)}
        n = len(labels)

        out_degrees = np.zeros(n + 1, dtype=np.int64)
        in_degrees = np.zeros(n + 1, dtype=np.int64)
        for source, target, _ in graph.edges():
            out_degrees[index_of[source] + 1] += 1
            in_degrees[index_of[target] + 1] += 1
        out_indptr = np.cumsum(out_degrees)
        in_indptr = np.cumsum(in_degrees)
        m = int(out_indptr[-1])

        out_indices = np.zeros(m, dtype=np.int64)
        out_probability = np.zeros(m, dtype=np.float64)
        out_interaction = np.zeros(m, dtype=np.float64)
        out_weight = np.zeros(m, dtype=np.float64)
        in_indices = np.zeros(m, dtype=np.int64)
        in_probability = np.zeros(m, dtype=np.float64)
        in_interaction = np.zeros(m, dtype=np.float64)
        in_weight = np.zeros(m, dtype=np.float64)

        out_cursor = out_indptr[:-1].copy()
        in_cursor = in_indptr[:-1].copy()
        for source, target, data in graph.edges():
            u = index_of[source]
            v = index_of[target]
            pos = out_cursor[u]
            out_indices[pos] = v
            out_probability[pos] = data.probability
            out_interaction[pos] = data.interaction
            out_weight[pos] = data.weight
            out_cursor[u] += 1
            pos = in_cursor[v]
            in_indices[pos] = u
            in_probability[pos] = data.probability
            in_interaction[pos] = data.interaction
            in_weight[pos] = data.weight
            in_cursor[v] += 1

        opinions = np.zeros(n, dtype=np.float64)
        thresholds = np.full(n, np.nan, dtype=np.float64)
        for label, i in index_of.items():
            data = graph.node_data(label)
            opinions[i] = 0.0 if data.opinion is None else data.opinion
            if data.threshold is not None:
                thresholds[i] = data.threshold

        return cls(
            labels=labels,
            index_of=index_of,
            out_indptr=out_indptr,
            out_indices=out_indices,
            out_probability=out_probability,
            out_interaction=out_interaction,
            out_weight=out_weight,
            in_indptr=in_indptr,
            in_indices=in_indices,
            in_probability=in_probability,
            in_interaction=in_interaction,
            in_weight=in_weight,
            opinions=opinions,
            thresholds=thresholds,
        )

    # ------------------------------------------------------------ queries

    @property
    def number_of_nodes(self) -> int:
        return len(self.labels)

    @property
    def number_of_edges(self) -> int:
        return int(self.out_indptr[-1])

    def out_neighbors(self, node: int) -> np.ndarray:
        return self.out_indices[self.out_indptr[node]:self.out_indptr[node + 1]]

    def out_probabilities(self, node: int) -> np.ndarray:
        return self.out_probability[self.out_indptr[node]:self.out_indptr[node + 1]]

    def out_interactions(self, node: int) -> np.ndarray:
        return self.out_interaction[self.out_indptr[node]:self.out_indptr[node + 1]]

    def out_weights(self, node: int) -> np.ndarray:
        return self.out_weight[self.out_indptr[node]:self.out_indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        return self.in_indices[self.in_indptr[node]:self.in_indptr[node + 1]]

    def in_probabilities(self, node: int) -> np.ndarray:
        return self.in_probability[self.in_indptr[node]:self.in_indptr[node + 1]]

    def in_interactions(self, node: int) -> np.ndarray:
        return self.in_interaction[self.in_indptr[node]:self.in_indptr[node + 1]]

    def in_weights(self, node: int) -> np.ndarray:
        return self.in_weight[self.in_indptr[node]:self.in_indptr[node + 1]]

    def out_degree(self, node: int) -> int:
        return int(self.out_indptr[node + 1] - self.out_indptr[node])

    def in_degree(self, node: int) -> int:
        return int(self.in_indptr[node + 1] - self.in_indptr[node])

    # ------------------------------------------------- cached derived arrays
    #
    # CompiledGraph is immutable, so each of these is computed at most once
    # per graph and shared by every consumer (score engines, IRIE, the scalar
    # diffusion models).  They are deliberately *lazy*: compiling a graph pays
    # nothing until an algorithm actually needs the array.

    @property
    def edge_sources(self) -> np.ndarray:
        """Source node index of every out-edge, aligned with ``out_indices``."""
        if self._edge_sources is None:
            self._edge_sources = np.repeat(
                np.arange(self.number_of_nodes, dtype=np.int64),
                np.diff(self.out_indptr),
            )
        return self._edge_sources

    def resolved_edge_probabilities(self, weighting: str) -> np.ndarray:
        """Per-out-edge walk probabilities for a model weighting (cached).

        * ``"ic"`` — the annotated influence probabilities ``p``.
        * ``"wc"`` — ``1 / in_degree(target)``.
        * ``"lt"`` — the annotated LT weights when present, else
          ``1 / in_degree`` (the live-edge probabilities, Sec. 3.3).
        """
        from repro.exceptions import ConfigurationError

        cached = self._resolved_probabilities.get(weighting)
        if cached is not None:
            return cached
        if weighting == "ic":
            resolved = self.out_probability
        elif weighting == "lt" and np.any(self.out_weight > 0):
            resolved = self.out_weight
        elif weighting in ("wc", "lt"):
            in_degrees = np.diff(self.in_indptr).astype(np.float64)
            safe = np.where(in_degrees > 0, in_degrees, 1.0)
            resolved = 1.0 / safe[self.out_indices]
        else:
            raise ConfigurationError(
                f"weighting must be one of ('ic', 'wc', 'lt'), got {weighting!r}"
            )
        self._resolved_probabilities[weighting] = resolved
        return resolved

    @property
    def out_psi(self) -> np.ndarray:
        """OSIM's ``psi = (2 phi - 1) / 2`` per out-edge (cached).

        The expected signed retention of the upstream opinion across one
        interaction: agreement contributes ``+o``, disagreement ``-o``.
        """
        if self._out_psi is None:
            self._out_psi = (2.0 * self.out_interaction - 1.0) / 2.0
        return self._out_psi

    @property
    def out_to_in_position(self) -> np.ndarray:
        """Map each out-CSR edge position to the same edge's in-CSR position.

        Fast path: :meth:`from_digraph` fills both CSRs in one edge pass, so
        within a target's in-slice the edges appear in ascending out-position
        order and a single stable argsort of the out targets reproduces the
        in-CSR layout.  The result is verified with one gather (sources must
        line up); CSR layouts built elsewhere that violate the invariant fall
        back to two lexsorts on the unique (target, source) edge keys.
        """
        if self._out_to_in_position is None:
            order = np.argsort(self.out_indices, kind="stable")
            mapping = np.empty(order.size, dtype=np.int64)
            mapping[order] = np.arange(order.size, dtype=np.int64)
            if not np.array_equal(self.in_indices[mapping], self.edge_sources):
                in_targets = np.repeat(
                    np.arange(self.number_of_nodes, dtype=np.int64),
                    np.diff(self.in_indptr),
                )
                order_out = np.lexsort((self.edge_sources, self.out_indices))
                order_in = np.lexsort((self.in_indices, in_targets))
                mapping = np.empty(order_out.size, dtype=np.int64)
                mapping[order_out] = order_in
            self._out_to_in_position = mapping
        return self._out_to_in_position

    def indices_for(self, labels: Iterable[Node]) -> list[int]:
        """Map original node labels to compiled indices."""
        return [self.index_of[label] for label in labels]

    def labels_for(self, indices: Iterable[int]) -> list[Node]:
        """Map compiled indices back to the original node labels."""
        return [self.labels[i] for i in indices]

    def __repr__(self) -> str:
        return (
            f"<CompiledGraph with {self.number_of_nodes} nodes and "
            f"{self.number_of_edges} edges>"
        )


# --------------------------------------------------------------------------
# validation helpers


def _validate_opinion(value: float) -> float:
    value = float(value)
    if not -1.0 <= value <= 1.0:
        raise GraphError(f"opinion must lie in [-1, 1], got {value}")
    return value


def _validate_unit(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise GraphError(f"{name} must lie in [0, 1], got {value}")
    return value
