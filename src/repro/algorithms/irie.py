"""IRIE — Influence Ranking / Influence Estimation (Jung, Heo and Chen, ICDM 2012).

IRIE combines a global influence *ranking* with an influence *estimation*
step that discounts the rank of nodes likely to be activated by the seeds
already chosen:

* **Ranking (IR)** — iterate
  ``r(u) = (1 - AP(u)) * (1 + alpha * sum_{v in Out(u)} p_(u,v) * r(v))``
  where ``AP(u)`` is the estimated probability that ``u`` is already activated
  by the current seed set.
* **Estimation (IE)** — after selecting a seed ``s``, propagate activation
  probabilities one/two hops from ``s`` to update ``AP``.

The paper uses IRIE as the state-of-the-art heuristic competitor under the IC
and WC models (Figs. 6j, 7e, 7h) with ``alpha = 0.7`` and ``theta = 1/320``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.algorithms.easyim import edge_sources, resolve_edge_probabilities
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph


class IRIESelector(SeedSelector):
    """IRIE seed selection for the IC/WC models."""

    name = "irie"

    def __init__(
        self,
        alpha: float = 0.7,
        theta: float = 1.0 / 320.0,
        iterations: int = 20,
        weighting: str = "ic",
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must lie in (0, 1], got {alpha}")
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        self.alpha = alpha
        self.theta = theta
        self.iterations = iterations
        self.weighting = weighting

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        # Both arrays are graph-static caches on the CompiledGraph, shared
        # with the EaSyIM/OSIM score engine (no per-selection np.repeat).
        probabilities = resolve_edge_probabilities(graph, self.weighting)
        sources = edge_sources(graph)
        targets = graph.out_indices

        activation_probability = np.zeros(n, dtype=np.float64)
        selected: list[int] = []
        scores_out: dict[int, float] = {}
        for _ in range(budget):
            ranks = self._rank(
                n, sources, targets, probabilities, activation_probability
            )
            if selected:
                ranks[np.asarray(selected, dtype=np.int64)] = -np.inf
            best = int(np.argmax(ranks))
            selected.append(best)
            scores_out[best] = float(ranks[best])
            self._update_activation_probability(
                graph, best, activation_probability, probabilities
            )
        return selected, {"scores": scores_out}

    # ------------------------------------------------------------- internals

    def _rank(
        self,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        probabilities: np.ndarray,
        activation_probability: np.ndarray,
    ) -> np.ndarray:
        """Iterate the IR linear system to (near) fixed point."""
        ranks = np.ones(n, dtype=np.float64)
        damping = 1.0 - activation_probability
        for _ in range(self.iterations):
            neighbour_sum = np.bincount(
                sources, weights=probabilities * ranks[targets], minlength=n
            )
            new_ranks = damping * (1.0 + self.alpha * neighbour_sum)
            if np.max(np.abs(new_ranks - ranks)) < self.theta:
                ranks = new_ranks
                break
            ranks = new_ranks
        return ranks

    def _update_activation_probability(
        self,
        graph: CompiledGraph,
        seed: int,
        activation_probability: np.ndarray,
        probabilities: np.ndarray,
    ) -> None:
        """Two-hop influence-estimation update of AP after picking ``seed``."""
        activation_probability[seed] = 1.0
        start, end = graph.out_indptr[seed], graph.out_indptr[seed + 1]
        first_hop = graph.out_indices[start:end]
        first_probability = probabilities[start:end]
        for neighbor, probability in zip(first_hop, first_probability):
            neighbor = int(neighbor)
            activation_probability[neighbor] = 1.0 - (
                (1.0 - activation_probability[neighbor]) * (1.0 - probability)
            )
            # Second hop, damped by the first-hop probability.
            n_start, n_end = graph.out_indptr[neighbor], graph.out_indptr[neighbor + 1]
            second_hop = graph.out_indices[n_start:n_end]
            second_probability = probabilities[n_start:n_end] * probability
            for node, value in zip(second_hop, second_probability):
                node = int(node)
                activation_probability[node] = 1.0 - (
                    (1.0 - activation_probability[node]) * (1.0 - value)
                )
        np.clip(activation_probability, 0.0, 1.0, out=activation_probability)
