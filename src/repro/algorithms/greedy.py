"""The simulation-based greedy family: GREEDY, CELF and CELF++.

* **GREEDY** (Kempe et al., KDD 2003) evaluates the marginal gain of every
  candidate node at every iteration with Monte-Carlo simulation — the
  (1 - 1/e) gold standard, but ``O(k * n)`` spread evaluations.
* **CELF** (Leskovec et al., KDD 2007) exploits submodularity with lazy
  evaluation: marginal gains can only shrink, so a stale upper bound that is
  already lower than the best fresh gain never needs re-evaluation.
* **CELF++** (Goyal et al., WWW 2011) additionally caches the marginal gain
  with respect to the previous round's best candidate, saving one evaluation
  whenever that candidate ends up being picked.

All three share a :class:`~repro.diffusion.simulation.MonteCarloEngine` and can
optimise any of the three objectives (spread, opinion spread, effective
opinion spread), although the approximation guarantee only holds for the
submodular opinion-oblivious spread.
"""

from __future__ import annotations

import heapq
from typing import Optional, Union

from repro.algorithms.base import SeedSelector
from repro.diffusion.base import DiffusionModel
from repro.diffusion.simulation import MonteCarloEngine
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState

_OBJECTIVES = ("spread", "opinion", "effective-opinion")


class GreedySelector(SeedSelector):
    """Kempe's GREEDY: full marginal-gain re-evaluation at every step."""

    name = "greedy"

    def __init__(
        self,
        model: Union[str, DiffusionModel] = "ic",
        simulations: int = 200,
        objective: str = "spread",
        penalty: float = 1.0,
        seed: RandomState = None,
        workers: int = 1,
    ) -> None:
        if objective not in _OBJECTIVES:
            raise ConfigurationError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        self.model = model
        self.simulations = simulations
        self.objective = objective
        self.penalty = penalty
        self.random_state = seed
        self.workers = workers
        self.opinion_aware = objective != "spread"

    # ------------------------------------------------------------- helpers

    def _engine(self, graph: CompiledGraph) -> MonteCarloEngine:
        return MonteCarloEngine(
            graph,
            self.model,
            simulations=self.simulations,
            penalty=self.penalty,
            seed=self.random_state,
            workers=self.workers,
        )

    def _value(self, engine: MonteCarloEngine, seeds: list[int]) -> float:
        if not seeds:
            return 0.0
        return engine.estimate(seeds).objective(self.objective)

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        engine = self._engine(graph)
        selected: list[int] = []
        current_value = 0.0
        evaluations = 0
        for _ in range(budget):
            best_node = None
            best_value = None
            for node in range(graph.number_of_nodes):
                if node in selected:
                    continue
                value = self._value(engine, selected + [node])
                evaluations += 1
                if best_value is None or value > best_value:
                    best_value = value
                    best_node = node
            selected.append(best_node)  # type: ignore[arg-type]
            current_value = best_value or 0.0
        return selected, {
            "objective_value": current_value,
            "spread_evaluations": evaluations,
            "simulations_run": engine.total_simulations_run,
        }


class CELFSelector(GreedySelector):
    """Lazy-forward greedy (CELF)."""

    name = "celf"

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        engine = self._engine(graph)
        evaluations = 0

        # Initial pass: marginal gain of every node w.r.t. the empty set.
        heap: list[tuple[float, int, int]] = []  # (-gain, node, round_evaluated)
        for node in range(graph.number_of_nodes):
            gain = self._value(engine, [node])
            evaluations += 1
            heapq.heappush(heap, (-gain, node, 0))

        selected: list[int] = []
        current_value = 0.0
        current_round = 0
        while len(selected) < budget and heap:
            negative_gain, node, evaluated_round = heapq.heappop(heap)
            if evaluated_round == current_round:
                # Fresh evaluation — by submodularity no other node can beat it.
                selected.append(node)
                current_value += -negative_gain
                current_round += 1
            else:
                gain = self._value(engine, selected + [node]) - current_value
                evaluations += 1
                heapq.heappush(heap, (-gain, node, current_round))
        return selected, {
            "objective_value": current_value,
            "spread_evaluations": evaluations,
            "simulations_run": engine.total_simulations_run,
        }


class CELFPlusPlusSelector(GreedySelector):
    """CELF++: lazy-forward greedy with look-ahead caching.

    Each heap entry additionally stores the marginal gain computed with the
    previous round's best candidate included (``gain_with_prev_best``); when
    that candidate is indeed selected, the cached value is reused instead of
    re-simulating.
    """

    name = "celf++"

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        engine = self._engine(graph)
        evaluations = 0

        # Entries: [gain, node, round_evaluated, prev_best, gain_with_prev_best]
        heap: list[list] = []
        for node in range(graph.number_of_nodes):
            gain = self._value(engine, [node])
            evaluations += 1
            heap.append([-gain, node, 0, None, None])
        heapq.heapify(heap)

        selected: list[int] = []
        current_value = 0.0
        current_round = 0
        last_selected: Optional[int] = None
        while len(selected) < budget and heap:
            entry = heapq.heappop(heap)
            negative_gain, node, evaluated_round, prev_best, gain_with_prev = entry
            if evaluated_round == current_round:
                selected.append(node)
                current_value += -negative_gain
                current_round += 1
                last_selected = node
                continue
            if prev_best is not None and prev_best == last_selected and gain_with_prev is not None:
                # The cached look-ahead marginal gain is exactly the fresh gain.
                gain = gain_with_prev
            else:
                gain = self._value(engine, selected + [node]) - current_value
                evaluations += 1
            # Look ahead: gain if the current front-runner were also selected.
            front_runner = heap[0][1] if heap else None
            gain_with_front = None
            if front_runner is not None and front_runner != node:
                gain_with_front = (
                    self._value(engine, selected + [front_runner, node])
                    - self._value(engine, selected + [front_runner])
                )
                evaluations += 2
            heapq.heappush(
                heap, [-gain, node, current_round, front_runner, gain_with_front]
            )
        return selected, {
            "objective_value": current_value,
            "spread_evaluations": evaluations,
            "simulations_run": engine.total_simulations_run,
        }
