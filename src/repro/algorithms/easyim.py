"""EaSyIM — the paper's opinion-oblivious score-assignment algorithm (Algorithm 4).

The score of a node ``u`` aggregates the contribution of every walk of length
at most ``l`` starting at ``u``; walks of length ``i`` from ``u`` are counted
as the sum, over out-neighbours ``v``, of walks of length ``i - 1`` from
``v``.  Each walk contributes the product of its edge probabilities:

.. math::

    \\Delta_i(u) = \\sum_{v \\in Out(u)} p_{(u,v)} (1 + \\Delta_{i-1}(v))

which runs in ``O(l (m + n))`` time and ``O(n)`` additional space.  Plugged
into the ScoreGREEDY driver the total cost is ``O(k D (m + n))`` — the paper's
headline complexity.

Contributions of previously activated nodes are discounted by zeroing every
edge that points at an activated node, which removes all walks passing
through the activated set.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.algorithms.score_greedy import ScoreGreedySelector
from repro.diffusion.base import DiffusionModel
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState

#: Default maximum path length; the paper finds l=3 to be the best trade-off.
DEFAULT_MAX_PATH_LENGTH = 3

_SUPPORTED_WEIGHTING = ("ic", "wc", "lt")


def resolve_edge_probabilities(graph: CompiledGraph, weighting: str) -> np.ndarray:
    """Per-out-edge walk probabilities for the chosen model weighting.

    * ``"ic"`` — the annotated influence probabilities ``p``.
    * ``"wc"`` — ``1 / in_degree(target)``.
    * ``"lt"`` — the annotated LT weights when present, else ``1/in_degree``
      (the live-edge probabilities, Sec. 3.3).

    Cached on the immutable :class:`CompiledGraph`, so repeated score passes
    (and IRIE, and the score engine) share one array per weighting.
    """
    if weighting not in _SUPPORTED_WEIGHTING:
        raise ConfigurationError(
            f"weighting must be one of {_SUPPORTED_WEIGHTING}, got {weighting!r}"
        )
    return graph.resolved_edge_probabilities(weighting)


def edge_sources(graph: CompiledGraph) -> np.ndarray:
    """Source node index of every out-edge, aligned with ``out_indices``.

    Cached on the immutable :class:`CompiledGraph` — the historical
    implementation re-allocated an m-sized ``np.repeat`` array on every
    score pass.
    """
    return graph.edge_sources


def easyim_scores(
    graph: CompiledGraph,
    active: Optional[np.ndarray] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    weighting: str = "ic",
) -> np.ndarray:
    """Assign EaSyIM scores ``Delta_l`` to every node.

    Parameters
    ----------
    graph:
        Compiled graph to score.
    active:
        Boolean mask of previously activated nodes whose contributions must be
        discounted; ``None`` means no node is active yet.
    max_path_length:
        The parameter ``l`` (1 <= l <= diameter).
    weighting:
        Which edge probabilities drive the walk weights (``"ic"``, ``"wc"`` or
        ``"lt"``).
    """
    if max_path_length < 1:
        raise ConfigurationError(
            f"max_path_length must be >= 1, got {max_path_length}"
        )
    n = graph.number_of_nodes
    if active is None:
        active = np.zeros(n, dtype=bool)
    probabilities = resolve_edge_probabilities(graph, weighting)
    sources = edge_sources(graph)
    targets = graph.out_indices
    # Edges pointing into the activated set contribute nothing.
    edge_mask = (~active[targets]).astype(np.float64)

    delta_prev = np.zeros(n, dtype=np.float64)
    for _ in range(max_path_length):
        contributions = probabilities * (1.0 + delta_prev[targets]) * edge_mask
        delta_prev = np.bincount(sources, weights=contributions, minlength=n)
    return delta_prev


class EaSyIMSelector(ScoreGreedySelector):
    """ScoreGREEDY with EaSyIM score assignment (the paper's EaSyIM algorithm).

    By default selection runs on the incremental
    :class:`~repro.scoring.engine.ScoreEngine`, which recomputes scores only
    inside the l-hop reverse ball of each activation update; pass
    ``incremental=False`` for the historical full-recompute driver (identical
    seed sets, asserted by the test suite).
    """

    name = "easyim"

    def __init__(
        self,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        model: Union[str, DiffusionModel] = "ic",
        weighting: Optional[str] = None,
        update_strategy: str = "single",
        update_simulations: int = 10,
        seed: RandomState = None,
        incremental: bool = True,
        fallback_fraction: Optional[float] = None,
    ) -> None:
        from repro.scoring import DEFAULT_FALLBACK_FRACTION, ScoreEngine

        model_name = model if isinstance(model, str) else model.name
        if weighting is None:
            weighting = _infer_weighting(model_name)
        self.max_path_length = max_path_length
        self.weighting = weighting
        self.incremental = incremental
        self.fallback_fraction = (
            DEFAULT_FALLBACK_FRACTION if fallback_fraction is None else fallback_fraction
        )

        def score(graph: CompiledGraph, active: np.ndarray) -> np.ndarray:
            return easyim_scores(
                graph,
                active=active,
                max_path_length=self.max_path_length,
                weighting=self.weighting,
            )

        def engine_factory(graph: CompiledGraph) -> ScoreEngine:
            return ScoreEngine(
                graph,
                algorithm="easyim",
                max_path_length=self.max_path_length,
                weighting=self.weighting,
                fallback_fraction=self.fallback_fraction,
            )

        super().__init__(
            score_function=score,
            model=model,
            update_strategy=update_strategy,
            update_simulations=update_simulations,
            seed=seed,
            engine_factory=engine_factory if incremental else None,
        )

    def __repr__(self) -> str:
        return (
            f"EaSyIMSelector(max_path_length={self.max_path_length}, "
            f"weighting={self.weighting!r}, incremental={self.incremental})"
        )


def _infer_weighting(model_name: str) -> str:
    """Map a diffusion-model identifier onto an EaSyIM edge weighting."""
    if "wc" in model_name:
        return "wc"
    if "lt" in model_name:
        return "lt"
    return "ic"
