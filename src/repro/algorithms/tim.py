"""TIM+ — Two-phase Influence Maximisation (Tang, Xiao and Shi, SIGMOD 2014).

TIM+ draws reverse-reachable (RR) sets — for a uniformly random node ``v``,
the set of nodes that reach ``v`` in a randomly sampled possible world — and
solves a maximum-coverage problem over them.  With enough RR sets the greedy
cover is a ``(1 - 1/e - eps)``-approximation with high probability.

The implementation follows the published two-phase structure:

1. **KPT estimation** — estimate a lower bound on the optimal expected spread
   by measuring the width (number of edges traversed) of progressively larger
   batches of RR sets, then refine it with the heuristic KPT* step.
2. **Node selection** — draw ``theta = lambda / KPT`` RR sets and run greedy
   maximum coverage.

The paper's scalability critique of TIM+ is its memory footprint — all
``theta`` RR sets are materialised — which this implementation reproduces
faithfully (and which the memory benchmarks measure).  ``max_rr_sets`` guards
against runaway allocations on large graphs; the cap is recorded in the
result metadata so benchmark output can flag it, mirroring the "TIM+ crashed
on our machine" annotations in the paper.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState, ensure_rng

_SUPPORTED_MODELS = ("ic", "wc", "lt")


def _log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` computed through log-gamma (stable for large n)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


class TIMPlusSelector(SeedSelector):
    """TIM+ seed selection under the IC, WC or LT model."""

    name = "tim+"

    def __init__(
        self,
        model: str = "ic",
        epsilon: float = 0.1,
        ell: float = 1.0,
        max_rr_sets: int = 2_000_000,
        seed: RandomState = None,
    ) -> None:
        if model not in _SUPPORTED_MODELS:
            raise ConfigurationError(
                f"model must be one of {_SUPPORTED_MODELS}, got {model!r}"
            )
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
        if ell <= 0:
            raise ConfigurationError(f"ell must be > 0, got {ell}")
        self.model = model
        self.epsilon = epsilon
        self.ell = ell
        self.max_rr_sets = max_rr_sets
        self._rng = ensure_rng(seed)

    # --------------------------------------------------------------- RR sets

    def _in_probabilities(self, graph: CompiledGraph) -> np.ndarray:
        """In-edge aligned traversal probabilities for the configured model."""
        if self.model == "ic":
            return graph.in_probability
        if self.model == "lt" and np.any(graph.in_weight > 0):
            return graph.in_weight
        in_degrees = np.diff(graph.in_indptr).astype(np.float64)
        safe = np.where(in_degrees > 0, in_degrees, 1.0)
        return np.repeat(1.0 / safe, np.diff(graph.in_indptr))

    def _sample_rr_set(
        self,
        graph: CompiledGraph,
        probabilities: np.ndarray,
        root: int,
    ) -> tuple[list[int], int]:
        """Sample one RR set rooted at ``root``; return (members, edges_examined)."""
        if self.model == "lt":
            return self._sample_rr_set_lt(graph, probabilities, root)
        members = [root]
        member_set = {root}
        frontier = [root]
        edges_examined = 0
        rng = self._rng
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                start, end = graph.in_indptr[node], graph.in_indptr[node + 1]
                count = end - start
                if count == 0:
                    continue
                edges_examined += int(count)
                draws = rng.random(count)
                hits = np.flatnonzero(draws < probabilities[start:end])
                for offset in hits:
                    source = int(graph.in_indices[start + offset])
                    if source not in member_set:
                        member_set.add(source)
                        members.append(source)
                        next_frontier.append(source)
            frontier = next_frontier
        return members, edges_examined

    def _sample_rr_set_lt(
        self,
        graph: CompiledGraph,
        probabilities: np.ndarray,
        root: int,
    ) -> tuple[list[int], int]:
        """LT RR sets: walk a single live in-edge per node (live-edge model)."""
        members = [root]
        member_set = {root}
        current = root
        edges_examined = 0
        rng = self._rng
        while True:
            start, end = graph.in_indptr[current], graph.in_indptr[current + 1]
            if start == end:
                break
            local = probabilities[start:end]
            total = float(local.sum())
            edges_examined += int(end - start)
            draw = rng.random()
            if draw >= total:
                break
            cumulative = np.cumsum(local)
            position = int(np.searchsorted(cumulative, draw, side="right"))
            source = int(graph.in_indices[start + position])
            if source in member_set:
                break
            member_set.add(source)
            members.append(source)
            current = source
        return members, edges_examined

    # ---------------------------------------------------------- KPT estimate

    def _estimate_kpt(
        self, graph: CompiledGraph, probabilities: np.ndarray, budget: int
    ) -> float:
        """Phase-1 KPT estimation (Algorithm 2 of the TIM paper)."""
        n = graph.number_of_nodes
        m = max(graph.number_of_edges, 1)
        rng = self._rng
        for i in range(1, max(2, int(math.log2(n)))):
            batch = int((6 * self.ell * math.log(n) + 6 * math.log(math.log2(max(n, 2)))) * (2 ** i))
            batch = min(batch, self.max_rr_sets)
            total = 0.0
            for _ in range(batch):
                root = int(rng.integers(0, n))
                members, width = self._sample_rr_set(graph, probabilities, root)
                kappa = 1.0 - (1.0 - width / m) ** budget
                total += kappa
            if batch and total / batch > 1.0 / (2 ** i):
                return max(n * total / (2.0 * batch), 1.0)
            if batch >= self.max_rr_sets:
                break
        return 1.0

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        probabilities = self._in_probabilities(graph)
        kpt = self._estimate_kpt(graph, probabilities, budget)

        epsilon = self.epsilon
        lambda_ = (
            (8 + 2 * epsilon)
            * n
            * (self.ell * math.log(n) + _log_binomial(n, budget) + math.log(2))
            / (epsilon ** 2)
        )
        theta = int(math.ceil(lambda_ / max(kpt, 1.0)))
        capped = theta > self.max_rr_sets
        theta = min(theta, self.max_rr_sets)
        theta = max(theta, 1)

        rng = self._rng
        rr_sets: list[list[int]] = []
        for _ in range(theta):
            root = int(rng.integers(0, n))
            members, _ = self._sample_rr_set(graph, probabilities, root)
            rr_sets.append(members)

        seeds, covered_fraction = self._max_coverage(n, rr_sets, budget)
        estimated_spread = covered_fraction * n
        return seeds, {
            "kpt": kpt,
            "theta": theta,
            "theta_capped": capped,
            "rr_sets": len(rr_sets),
            "estimated_spread": estimated_spread,
        }

    @staticmethod
    def _max_coverage(
        n: int, rr_sets: list[list[int]], budget: int
    ) -> tuple[list[int], float]:
        """Greedy maximum coverage of the RR sets by ``budget`` nodes."""
        coverage: dict[int, set[int]] = {}
        for set_index, members in enumerate(rr_sets):
            for node in members:
                coverage.setdefault(node, set()).add(set_index)
        covered: set[int] = set()
        seeds: list[int] = []
        for _ in range(budget):
            best_node = None
            best_gain = -1
            for node, sets in coverage.items():
                if node in seeds:
                    continue
                gain = len(sets - covered)
                if gain > best_gain:
                    best_gain = gain
                    best_node = node
            if best_node is None:
                # Not enough distinct nodes appear in RR sets; fill with any node.
                for node in range(n):
                    if node not in seeds:
                        best_node = node
                        break
            seeds.append(int(best_node))
            covered |= coverage.get(best_node, set())
        fraction = len(covered) / len(rr_sets) if rr_sets else 0.0
        return seeds, fraction
