"""TIM+ — Two-phase Influence Maximisation (Tang, Xiao and Shi, SIGMOD 2014).

TIM+ draws reverse-reachable (RR) sets — for a uniformly random node ``v``,
the set of nodes that reach ``v`` in a randomly sampled possible world — and
solves a maximum-coverage problem over them.  With enough RR sets the greedy
cover is a ``(1 - 1/e - eps)``-approximation with high probability.

The implementation follows the published two-phase structure:

1. **KPT estimation** — estimate a lower bound on the optimal expected spread
   by measuring the width (number of edges traversed) of progressively larger
   batches of RR sets (Algorithm 2), then refine it with the KPT* step
   (Algorithm 3): greedily cover the estimation-phase RR sets, measure the
   fraction of fresh RR sets that cover hits, and take the larger bound.
2. **Node selection** — draw ``theta = lambda / KPT*`` RR sets and run greedy
   maximum coverage.

All RR-set machinery runs on the vectorized sketch subsystem
(:mod:`repro.sketches`): blocks of reverse BFS frontiers are advanced per
numpy pass over the in-CSR arrays, sets are stored in a CSR-backed
:class:`~repro.sketches.collection.RRSetCollection`, and the cover is a
heap/counter lazy-greedy.  Sampling is chunked into ``block_size`` sets per
pass; the per-set counter-based randomness guarantees that the selected
seeds are identical for a fixed engine seed regardless of the block size.
The scalar per-set samplers are retained (``_sample_rr_set``,
``_sample_rr_set_lt``) as the reference implementation for equivalence tests
and the RIS benchmark baseline.

The paper's scalability critique of TIM+ is its memory footprint — all
``theta`` RR sets are materialised — which this implementation reproduces
faithfully (and which the memory benchmarks measure).  ``max_rr_sets`` guards
against runaway allocations on large graphs; the cap is recorded in the
result metadata so benchmark output can flag it, mirroring the "TIM+ crashed
on our machine" annotations in the paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.sketches.collection import RRSetCollection
from repro.sketches.coverage import greedy_max_coverage, pad_with_unselected
from repro.sketches.sampler import (
    SUPPORTED_MODELS as _SUPPORTED_MODELS,
    BatchRRSampler,
    in_edge_probabilities,
)
from repro.utils.rng import RandomState, ensure_rng


def _log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` computed through log-gamma (stable for large n)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


class TIMPlusSelector(SeedSelector):
    """TIM+ seed selection under the IC, WC or LT model."""

    name = "tim+"

    def __init__(
        self,
        model: str = "ic",
        epsilon: float = 0.1,
        ell: float = 1.0,
        max_rr_sets: int = 2_000_000,
        block_size: int = 2048,
        seed: RandomState = None,
    ) -> None:
        if model not in _SUPPORTED_MODELS:
            raise ConfigurationError(
                f"model must be one of {_SUPPORTED_MODELS}, got {model!r}"
            )
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
        if ell <= 0:
            raise ConfigurationError(f"ell must be > 0, got {ell}")
        if max_rr_sets < 1:
            raise ConfigurationError(
                f"max_rr_sets must be >= 1, got {max_rr_sets}"
            )
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        self.model = model
        self.epsilon = epsilon
        self.ell = ell
        self.max_rr_sets = max_rr_sets
        self.block_size = block_size
        self._rng = ensure_rng(seed)

    # --------------------------------------------------------------- RR sets

    def _in_probabilities(self, graph: CompiledGraph) -> np.ndarray:
        """In-edge aligned traversal probabilities for the configured model."""
        return in_edge_probabilities(graph, self.model)

    def _sample_rr_set(
        self,
        graph: CompiledGraph,
        probabilities: np.ndarray,
        root: int,
    ) -> tuple[list[int], int]:
        """Scalar reference sampler: one RR set rooted at ``root``.

        Returns ``(members, edges_examined)``.  The hot path uses
        :class:`~repro.sketches.sampler.BatchRRSampler`; this walk is kept
        for equivalence tests and the scalar benchmark baseline.
        """
        if self.model == "lt":
            return self._sample_rr_set_lt(graph, probabilities, root)
        members = [root]
        member_set = {root}
        frontier = [root]
        edges_examined = 0
        rng = self._rng
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                start, end = graph.in_indptr[node], graph.in_indptr[node + 1]
                count = end - start
                if count == 0:
                    continue
                edges_examined += int(count)
                draws = rng.random(count)
                hits = np.flatnonzero(draws < probabilities[start:end])
                for offset in hits:
                    source = int(graph.in_indices[start + offset])
                    if source not in member_set:
                        member_set.add(source)
                        members.append(source)
                        next_frontier.append(source)
            frontier = next_frontier
        return members, edges_examined

    def _sample_rr_set_lt(
        self,
        graph: CompiledGraph,
        probabilities: np.ndarray,
        root: int,
    ) -> tuple[list[int], int]:
        """LT RR sets: walk a single live in-edge per node (live-edge model)."""
        members = [root]
        member_set = {root}
        current = root
        edges_examined = 0
        rng = self._rng
        while True:
            start, end = graph.in_indptr[current], graph.in_indptr[current + 1]
            if start == end:
                break
            local = probabilities[start:end]
            total = float(local.sum())
            edges_examined += int(end - start)
            draw = rng.random()
            if draw >= total:
                break
            cumulative = np.cumsum(local)
            position = int(np.searchsorted(cumulative, draw, side="right"))
            source = int(graph.in_indices[start + position])
            if source in member_set:
                break
            member_set.add(source)
            members.append(source)
            current = source
        return members, edges_examined

    # ---------------------------------------------------------- block growth

    def _grow_collection(
        self,
        sampler: BatchRRSampler,
        collection: RRSetCollection,
        target: int,
    ) -> None:
        """Sample RR sets block-wise until ``collection`` holds ``target``."""
        sampler.sample_into(self._rng, collection, target, self.block_size)

    # ---------------------------------------------------------- KPT estimate

    def _estimate_kpt(
        self, graph: CompiledGraph, probabilities: np.ndarray, budget: int
    ) -> float:
        """Phase-1 KPT estimation (Algorithm 2 of the TIM paper)."""
        kpt, _ = self._estimate_kpt_with_sets(
            graph, BatchRRSampler(graph, self.model, probabilities), budget
        )
        return kpt

    def _estimate_kpt_with_sets(
        self,
        graph: CompiledGraph,
        sampler: BatchRRSampler,
        budget: int,
    ) -> Tuple[float, RRSetCollection]:
        """Algorithm 2 on the batch sampler.

        Also returns the RR sets of the final estimation round, which the
        KPT* refinement (Algorithm 3) reuses for its greedy cover.
        """
        n = graph.number_of_nodes
        m = max(graph.number_of_edges, 1)
        for i in range(1, max(2, int(math.log2(n)))):
            batch = int(
                (6 * self.ell * math.log(n)
                 + 6 * math.log(math.log2(max(n, 2)))) * (2 ** i)
            )
            batch = min(batch, self.max_rr_sets)
            collection = RRSetCollection(n)
            total = 0.0
            drawn = 0
            while drawn < batch:
                block = min(self.block_size, batch - drawn)
                members, indptr, widths = sampler.sample(self._rng, block)
                collection.append(members, indptr)
                kappa = 1.0 - (1.0 - widths / m) ** budget
                total += float(kappa.sum())
                drawn += block
            if batch and total / batch > 1.0 / (2 ** i):
                return max(n * total / (2.0 * batch), 1.0), collection
            if batch >= self.max_rr_sets:
                break
        return 1.0, collection

    def _refine_kpt(
        self,
        sampler: BatchRRSampler,
        estimation_sets: RRSetCollection,
        kpt: float,
        budget: int,
    ) -> float:
        """KPT* refinement (Algorithm 3 of the TIM paper).

        Greedily covers the estimation-phase RR sets to get an interim seed
        set, measures the fraction ``f`` of fresh RR sets that seed set
        intersects, and returns ``max(KPT, f * n / (1 + eps'))`` — a bound
        that is never worse than KPT, so phase-2 theta is never inflated by
        a weak phase-1 estimate.
        """
        n = sampler.n
        if estimation_sets.num_sets == 0 or n == 0:
            return kpt
        interim, _ = greedy_max_coverage(estimation_sets, budget)
        if not interim:
            return kpt
        epsilon_prime = 5.0 * (
            self.ell * self.epsilon ** 2 / (budget + self.ell)
        ) ** (1.0 / 3.0)
        lambda_prime = (
            (2.0 + epsilon_prime) * self.ell * n * math.log(max(n, 2))
            / (epsilon_prime ** 2)
        )
        theta_prime = int(math.ceil(lambda_prime / max(kpt, 1.0)))
        theta_prime = max(1, min(theta_prime, self.max_rr_sets))
        seed_mask = np.zeros(n, dtype=bool)
        seed_mask[np.asarray(interim, dtype=np.int64)] = True
        covered = 0
        drawn = 0
        while drawn < theta_prime:
            block = min(self.block_size, theta_prime - drawn)
            members, indptr, _ = sampler.sample(self._rng, block)
            hits = seed_mask[members]
            if hits.any():
                set_ids = np.repeat(np.arange(block), np.diff(indptr))
                covered += int(np.unique(set_ids[hits]).size)
            drawn += block
        fraction = covered / theta_prime
        kpt_prime = fraction * n / (1.0 + epsilon_prime)
        return max(kpt, kpt_prime)

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        probabilities = self._in_probabilities(graph)
        sampler = BatchRRSampler(graph, self.model, probabilities)
        kpt, estimation_sets = self._estimate_kpt_with_sets(graph, sampler, budget)
        kpt_star = self._refine_kpt(sampler, estimation_sets, kpt, budget)

        epsilon = self.epsilon
        lambda_ = (
            (8 + 2 * epsilon)
            * n
            * (self.ell * math.log(n) + _log_binomial(n, budget) + math.log(2))
            / (epsilon ** 2)
        )
        theta = int(math.ceil(lambda_ / max(kpt_star, 1.0)))
        capped = theta > self.max_rr_sets
        theta = min(theta, self.max_rr_sets)
        theta = max(theta, 1)

        collection = RRSetCollection(n)
        self._grow_collection(sampler, collection, theta)
        covering, covered_fraction = greedy_max_coverage(collection, budget)
        seeds = pad_with_unselected(n, covering, budget)
        estimated_spread = covered_fraction * n
        return seeds, {
            "kpt": kpt,
            "kpt_star": kpt_star,
            "theta": theta,
            "theta_capped": capped,
            "rr_sets": collection.num_sets,
            "estimated_spread": estimated_spread,
        }

    @staticmethod
    def _max_coverage(
        n: int, rr_sets: list[list[int]], budget: int
    ) -> tuple[list[int], float]:
        """Greedy maximum coverage of the RR sets by ``budget`` nodes.

        Compatibility wrapper over the sketch subsystem's lazy-greedy cover;
        pads with arbitrary unselected nodes when fewer than ``budget``
        distinct nodes appear in the RR sets.
        """
        collection = RRSetCollection.from_lists(n, rr_sets)
        covering, fraction = greedy_max_coverage(collection, budget)
        return pad_with_unselected(n, covering, budget), fraction
