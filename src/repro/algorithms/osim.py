"""OSIM — the paper's opinion-aware score-assignment algorithm (Algorithm 5).

OSIM extends EaSyIM with three per-node running aggregates that capture how
opinions mix along walks of length ``i`` starting at ``u``:

* ``or_i(u)`` — the probability-weighted sum of the *initial* opinions of the
  nodes reachable through length-``i`` walks;
* ``alpha_i(u)`` — the probability-weighted product of the interaction terms
  ``(2 phi - 1) / 2`` along those walks (how much of the seed's own opinion
  survives ``i`` hops of agreement/disagreement mixing);
* ``sc_i(u)`` — the contribution of intermediate nodes to the opinion change
  of the walk's endpoint.

The recurrences follow Algorithm 5 line by line; for a single path the score
equals the closed-form effective opinion spread of Lemma 8 (verified by the
test suite through Lemma 9).  The complexity matches EaSyIM:
``O(l (m + n))`` time and ``O(n)`` additional space.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.algorithms.easyim import (
    DEFAULT_MAX_PATH_LENGTH,
    edge_sources,
    resolve_edge_probabilities,
)
from repro.algorithms.score_greedy import ScoreGreedySelector
from repro.diffusion.base import DiffusionModel
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState


def osim_scores(
    graph: CompiledGraph,
    active: Optional[np.ndarray] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    weighting: str = "ic",
) -> np.ndarray:
    """Assign OSIM scores ``Delta_l`` to every node (Algorithm 5).

    The graph's ``opinions`` array provides :math:`o_v` (unannotated graphs
    score as all-zero opinions) and the per-edge ``interaction`` array
    provides :math:`\\varphi_{(u,v)}`.
    """
    if max_path_length < 1:
        raise ConfigurationError(
            f"max_path_length must be >= 1, got {max_path_length}"
        )
    n = graph.number_of_nodes
    if active is None:
        active = np.zeros(n, dtype=bool)
    probabilities = resolve_edge_probabilities(graph, weighting)
    sources = edge_sources(graph)
    targets = graph.out_indices
    edge_mask = (~active[targets]).astype(np.float64)
    opinions = graph.opinions

    # psi = (2*phi - 1) / 2 — the expected signed retention of the upstream
    # opinion across one interaction (agreement contributes +o, disagreement -o).
    psi = graph.out_psi

    alpha_prev = np.ones(n, dtype=np.float64)
    or_prev = opinions.astype(np.float64).copy()
    sc_prev = np.zeros(n, dtype=np.float64)
    delta = np.zeros(n, dtype=np.float64)

    for _ in range(max_path_length):
        weighted = probabilities * edge_mask
        or_cur = np.bincount(
            sources, weights=weighted * or_prev[targets], minlength=n
        )
        alpha_cur = np.bincount(
            sources, weights=weighted * alpha_prev[targets] * psi, minlength=n
        )
        sc_cur = np.bincount(
            sources, weights=weighted * sc_prev[targets], minlength=n
        )
        sc_cur = sc_cur + opinions * alpha_cur
        delta = delta + (or_cur + sc_cur + opinions * alpha_cur) / 2.0
        or_prev, alpha_prev, sc_prev = or_cur, alpha_cur, sc_cur
    return delta


class OSIMSelector(ScoreGreedySelector):
    """ScoreGREEDY with OSIM score assignment — the paper's MEO heuristic.

    By default selection runs on the incremental
    :class:`~repro.scoring.engine.ScoreEngine` (which also fuses OSIM's three
    per-hop scatters into one stacked pass); pass ``incremental=False`` for
    the historical full-recompute driver (identical seed sets, asserted by
    the test suite).
    """

    name = "osim"
    opinion_aware = True

    def __init__(
        self,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        model: Union[str, DiffusionModel] = "oi-ic",
        weighting: Optional[str] = None,
        update_strategy: str = "single",
        update_simulations: int = 10,
        seed: RandomState = None,
        incremental: bool = True,
        fallback_fraction: Optional[float] = None,
    ) -> None:
        from repro.scoring import DEFAULT_FALLBACK_FRACTION, ScoreEngine

        model_name = model if isinstance(model, str) else model.name
        if weighting is None:
            weighting = "lt" if model_name.endswith("lt") else (
                "wc" if model_name.endswith("wc") else "ic"
            )
        self.max_path_length = max_path_length
        self.weighting = weighting
        self.incremental = incremental
        self.fallback_fraction = (
            DEFAULT_FALLBACK_FRACTION if fallback_fraction is None else fallback_fraction
        )

        def score(graph: CompiledGraph, active: np.ndarray) -> np.ndarray:
            return osim_scores(
                graph,
                active=active,
                max_path_length=self.max_path_length,
                weighting=self.weighting,
            )

        def engine_factory(graph: CompiledGraph) -> ScoreEngine:
            return ScoreEngine(
                graph,
                algorithm="osim",
                max_path_length=self.max_path_length,
                weighting=self.weighting,
                fallback_fraction=self.fallback_fraction,
            )

        super().__init__(
            score_function=score,
            model=model,
            update_strategy=update_strategy,
            update_simulations=update_simulations,
            seed=seed,
            engine_factory=engine_factory if incremental else None,
        )

    def __repr__(self) -> str:
        return (
            f"OSIMSelector(max_path_length={self.max_path_length}, "
            f"weighting={self.weighting!r}, incremental={self.incremental})"
        )
