"""Degree-based heuristics: HighDegree, SingleDiscount and DegreeDiscount.

DegreeDiscount (Chen, Wang and Yang, KDD 2009) is derived for the IC model
with a uniform probability ``p``; SingleDiscount simply subtracts one from the
degree of the neighbours of already selected seeds and works for any model.
They are classic cheap baselines for the opinion-oblivious IM problem.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.base import SeedSelector, top_k_by_score
from repro.graphs.digraph import CompiledGraph, DEFAULT_INFLUENCE_PROBABILITY


class HighDegreeSelector(SeedSelector):
    """Select the ``k`` nodes with the largest out-degree."""

    name = "high-degree"

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        degrees = np.diff(graph.out_indptr)
        seeds = top_k_by_score(degrees.tolist(), budget)
        scores = {i: float(degrees[i]) for i in seeds}
        return seeds, {"scores": scores}


class SingleDiscountSelector(SeedSelector):
    """Degree heuristic discounting one unit per already-covered neighbour."""

    name = "single-discount"

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        effective = np.diff(graph.out_indptr).astype(np.float64)
        selected: list[int] = []
        selected_set: set[int] = set()
        # Max-heap of (-degree, node); stale entries are skipped lazily.
        heap = [(-effective[i], i) for i in range(n)]
        heapq.heapify(heap)
        while len(selected) < budget and heap:
            negative_degree, node = heapq.heappop(heap)
            if node in selected_set:
                continue
            if -negative_degree != effective[node]:
                heapq.heappush(heap, (-effective[node], node))
                continue
            selected.append(node)
            selected_set.add(node)
            for neighbor in graph.out_neighbors(node):
                neighbor = int(neighbor)
                if neighbor not in selected_set:
                    effective[neighbor] -= 1.0
                    heapq.heappush(heap, (-effective[neighbor], neighbor))
        return selected, {}


class DegreeDiscountSelector(SeedSelector):
    """DegreeDiscountIC for the uniform-probability IC model.

    The discounted degree of a node ``v`` with ``t_v`` selected in-neighbours
    is ``d_v - 2 t_v - (d_v - t_v) t_v p``.
    """

    name = "degree-discount"

    def __init__(self, probability: float = DEFAULT_INFLUENCE_PROBABILITY) -> None:
        self.probability = float(probability)

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        degrees = np.diff(graph.out_indptr).astype(np.float64)
        discounted = degrees.copy()
        selected_neighbors = np.zeros(n, dtype=np.float64)
        selected: list[int] = []
        selected_set: set[int] = set()
        heap = [(-discounted[i], i) for i in range(n)]
        heapq.heapify(heap)
        while len(selected) < budget and heap:
            negative_score, node = heapq.heappop(heap)
            if node in selected_set:
                continue
            if -negative_score != discounted[node]:
                heapq.heappush(heap, (-discounted[node], node))
                continue
            selected.append(node)
            selected_set.add(node)
            for neighbor in graph.out_neighbors(node):
                neighbor = int(neighbor)
                if neighbor in selected_set:
                    continue
                selected_neighbors[neighbor] += 1.0
                t = selected_neighbors[neighbor]
                d = degrees[neighbor]
                discounted[neighbor] = d - 2.0 * t - (d - t) * t * self.probability
                heapq.heappush(heap, (-discounted[neighbor], neighbor))
        return selected, {}
