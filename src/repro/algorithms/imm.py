"""IMM — Influence Maximisation with Martingales (Tang, Shi and Xiao, SIGMOD 2015).

IMM is the successor of TIM+: it replaces TIM's KPT estimation with a
martingale-based search for a lower bound on the optimal spread (OPT), which
lets it reuse every sampled RR set and drive the total number of samples much
closer to the theoretical minimum.  Like TIM+ it then greedily covers the RR
sets to pick seeds.

The implementation follows the published sampling phase:

1. For ``i = 1, 2, ...`` draw enough RR sets for the candidate bound
   ``x = n / 2^i``, run greedy coverage, and stop when the covered fraction
   certifies ``OPT >= LB``.
2. Draw ``theta(LB)`` RR sets in total and run the final greedy coverage.

Sets are drawn block-wise through the vectorized
:class:`~repro.sketches.sampler.BatchRRSampler` into one CSR-backed
:class:`~repro.sketches.collection.RRSetCollection`, so every set sampled
while searching for the lower bound is reused by later rounds and by the
final cover — the martingale reuse that distinguishes IMM from TIM+.  The
same ``max_rr_sets`` safety cap as TIM+ applies, and seed sets are
independent of the sampling ``block_size`` for a fixed engine seed.
"""

from __future__ import annotations

import math

from repro.algorithms.tim import TIMPlusSelector, _log_binomial
from repro.graphs.digraph import CompiledGraph
from repro.sketches.collection import RRSetCollection
from repro.sketches.coverage import greedy_max_coverage, pad_with_unselected
from repro.sketches.sampler import BatchRRSampler


class IMMSelector(TIMPlusSelector):
    """IMM seed selection (shares the RR-set machinery with TIM+)."""

    name = "imm"

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        probabilities = self._in_probabilities(graph)
        sampler = BatchRRSampler(graph, self.model, probabilities)
        epsilon = self.epsilon
        ell = self.ell * (1.0 + math.log(2) / max(math.log(n), 1e-9))

        log_nk = _log_binomial(n, budget)
        epsilon_prime = math.sqrt(2.0) * epsilon

        collection = RRSetCollection(n)
        lower_bound = 1.0
        rounds = int(math.ceil(math.log2(max(n, 2)))) - 1
        for i in range(1, max(rounds, 1) + 1):
            x = n / (2.0 ** i)
            lambda_prime = (
                (2.0 + 2.0 / 3.0 * epsilon_prime)
                * (log_nk + ell * math.log(n) + math.log(math.log2(max(n, 2))))
                * n
                / (epsilon_prime ** 2)
            )
            theta_i = min(int(math.ceil(lambda_prime / x)), self.max_rr_sets)
            self._grow_collection(sampler, collection, theta_i)
            _, covered_fraction = greedy_max_coverage(collection, budget)
            if n * covered_fraction >= (1.0 + epsilon_prime) * x:
                lower_bound = n * covered_fraction / (1.0 + epsilon_prime)
                break
            if collection.num_sets >= self.max_rr_sets:
                lower_bound = max(n * covered_fraction, 1.0)
                break

        alpha = math.sqrt(ell * math.log(n) + math.log(2))
        beta = math.sqrt(
            (1.0 - 1.0 / math.e) * (log_nk + ell * math.log(n) + math.log(2))
        )
        lambda_star = 2.0 * n * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2 / (epsilon ** 2)
        theta = min(
            int(math.ceil(lambda_star / max(lower_bound, 1.0))), self.max_rr_sets
        )
        self._grow_collection(sampler, collection, theta)

        covering, covered_fraction = greedy_max_coverage(collection, budget)
        seeds = pad_with_unselected(n, covering, budget)
        return seeds, {
            "lower_bound": lower_bound,
            "theta": collection.num_sets,
            "estimated_spread": covered_fraction * n,
        }
