"""Seed-selection algorithms.

The paper's contributions:

* :class:`EaSyIMSelector` — opinion-oblivious score assignment (Algorithm 4)
  inside the ScoreGREEDY driver (Algorithm 1).
* :class:`OSIMSelector` — opinion-aware score assignment (Algorithm 5).
* :class:`PathUnionSelector` — the PU matrix algorithm (Algorithm 3), exact
  but cubic; kept for validation and ablation.

Baselines and competitors used in the evaluation:

* :class:`GreedySelector`, :class:`CELFSelector`, :class:`CELFPlusPlusSelector`
  — the simulation-based greedy family (Kempe et al. / Goyal et al.).
* :class:`ModifiedGreedySelector` — greedy on the effective opinion spread
  (Appendix A), the quality baseline for MEO.
* :class:`TIMPlusSelector`, :class:`IMMSelector` — RIS / sketch algorithms.
* :class:`IRIESelector`, :class:`SimPathSelector` — state-of-the-art heuristics
  for IC/WC and LT respectively.
* :class:`HighDegreeSelector`, :class:`SingleDiscountSelector`,
  :class:`DegreeDiscountSelector`, :class:`PageRankSelector`,
  :class:`RandomSelector` — standard structural baselines.
"""

from repro.algorithms.base import SeedSelectionResult, SeedSelector
from repro.algorithms.random_seeds import RandomSelector
from repro.algorithms.degree import (
    DegreeDiscountSelector,
    HighDegreeSelector,
    SingleDiscountSelector,
)
from repro.algorithms.pagerank import PageRankSelector
from repro.algorithms.greedy import CELFPlusPlusSelector, CELFSelector, GreedySelector
from repro.algorithms.modified_greedy import ModifiedGreedySelector
from repro.algorithms.easyim import EaSyIMSelector, easyim_scores
from repro.algorithms.osim import OSIMSelector, osim_scores
from repro.algorithms.path_union import PathUnionSelector, path_union_scores
from repro.algorithms.irie import IRIESelector
from repro.algorithms.simpath import SimPathSelector
from repro.algorithms.tim import TIMPlusSelector
from repro.algorithms.imm import IMMSelector
from repro.algorithms.registry import (
    AlgorithmInfo,
    algorithm_capabilities,
    algorithm_info,
    available_algorithms,
    get_algorithm,
)

__all__ = [
    "SeedSelector",
    "SeedSelectionResult",
    "AlgorithmInfo",
    "algorithm_capabilities",
    "algorithm_info",
    "RandomSelector",
    "HighDegreeSelector",
    "SingleDiscountSelector",
    "DegreeDiscountSelector",
    "PageRankSelector",
    "GreedySelector",
    "CELFSelector",
    "CELFPlusPlusSelector",
    "ModifiedGreedySelector",
    "EaSyIMSelector",
    "easyim_scores",
    "OSIMSelector",
    "osim_scores",
    "PathUnionSelector",
    "path_union_scores",
    "IRIESelector",
    "SimPathSelector",
    "TIMPlusSelector",
    "IMMSelector",
    "available_algorithms",
    "get_algorithm",
]
