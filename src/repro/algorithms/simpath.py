"""SIMPATH — simple-path enumeration heuristic for the LT model
(Goyal, Lu and Lakshmanan, ICDM 2011).

Under the LT / live-edge model the spread of a seed set equals the sum, over
nodes ``v``, of the total probability of simple paths from the seed set to
``v``.  SIMPATH estimates that quantity by enumerating simple paths whose
probability stays above a pruning threshold ``eta``, and selects seeds with a
CELF-style lazy greedy loop on the path-based spread estimates.

The paper runs SIMPATH with ``eta = 1e-3`` and look-ahead ``l = 4`` as the
state-of-the-art LT heuristic competitor (Figs. 6j, 7d, 7i).  This
implementation keeps the core backtracking enumeration and lazy-forward
selection; the vertex-cover optimisation of the original paper is an
engineering refinement that does not change the output and is omitted.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph


class SimPathSelector(SeedSelector):
    """SIMPATH seed selection for the LT model."""

    name = "simpath"

    def __init__(
        self,
        eta: float = 1e-3,
        max_path_length: int = 4,
    ) -> None:
        if not 0.0 < eta < 1.0:
            raise ConfigurationError(f"eta must lie in (0, 1), got {eta}")
        if max_path_length < 1:
            raise ConfigurationError(
                f"max_path_length must be >= 1, got {max_path_length}"
            )
        self.eta = eta
        self.max_path_length = max_path_length

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        weights = self._lt_weights(graph)
        n = graph.number_of_nodes

        # CELF-style lazy greedy over the path-based spread estimate.
        heap: list[tuple[float, int, int]] = []
        for node in range(n):
            spread = self._simpath_spread(graph, weights, [node], frozenset())
            heapq.heappush(heap, (-spread, node, 0))

        selected: list[int] = []
        blocked: set[int] = set()
        current_value = 0.0
        current_round = 0
        evaluations = n
        while len(selected) < budget and heap:
            negative_spread, node, evaluated_round = heapq.heappop(heap)
            if node in blocked:
                continue
            if evaluated_round == current_round:
                selected.append(node)
                blocked.add(node)
                current_value += -negative_spread
                current_round += 1
            else:
                gain = (
                    self._simpath_spread(graph, weights, selected + [node], frozenset())
                    - current_value
                )
                evaluations += 1
                heapq.heappush(heap, (-gain, node, current_round))
        return selected, {
            "objective_value": current_value,
            "spread_evaluations": evaluations,
        }

    # ------------------------------------------------------------- internals

    def _lt_weights(self, graph: CompiledGraph) -> np.ndarray:
        """Out-edge aligned LT weights (annotated or 1/in-degree)."""
        if np.any(graph.out_weight > 0):
            return graph.out_weight
        in_degrees = np.diff(graph.in_indptr).astype(np.float64)
        safe = np.where(in_degrees > 0, in_degrees, 1.0)
        return 1.0 / safe[graph.out_indices]

    def _simpath_spread(
        self,
        graph: CompiledGraph,
        weights: np.ndarray,
        seeds: list[int],
        removed: frozenset[int],
    ) -> float:
        """Spread of ``seeds`` on the graph with ``removed`` nodes deleted."""
        total = 0.0
        other_seeds = set(seeds)
        for seed in seeds:
            # Paths from one seed must not wander through other seeds
            # (those nodes are already active and contribute separately).
            exclude = (other_seeds - {seed}) | set(removed)
            total += self._backtrack(graph, weights, seed, exclude)
        return total

    def _backtrack(
        self,
        graph: CompiledGraph,
        weights: np.ndarray,
        source: int,
        exclude: set[int],
    ) -> float:
        """Enumerate simple paths from ``source`` with probability >= eta.

        Returns ``1 + sum over reached nodes of the path probabilities``
        (the ``1`` accounts for the source itself, matching the SIMPATH
        spread definition).
        """
        spread = 1.0
        on_path = {source}
        # Stack holds (node, path_probability, next_edge_offset).
        stack: list[list] = [[source, 1.0, int(graph.out_indptr[source])]]
        while stack:
            node, path_probability, offset = stack[-1]
            end = int(graph.out_indptr[node + 1])
            advanced = False
            while offset < end:
                target = int(graph.out_indices[offset])
                weight = float(weights[offset])
                offset += 1
                if target in on_path or target in exclude:
                    continue
                new_probability = path_probability * weight
                if new_probability < self.eta:
                    continue
                stack[-1][2] = offset
                spread += new_probability
                if len(stack) <= self.max_path_length:
                    on_path.add(target)
                    stack.append([target, new_probability, int(graph.out_indptr[target])])
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_path.discard(node)
        return spread
