"""Name-based lookup of seed-selection algorithms.

Mirrors :mod:`repro.diffusion.registry` for algorithms: the public API, the
CLI and the benchmark harness ask for algorithms by short string identifiers
and pass configuration as keyword arguments.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.algorithms.base import SeedSelector
from repro.algorithms.degree import (
    DegreeDiscountSelector,
    HighDegreeSelector,
    SingleDiscountSelector,
)
from repro.algorithms.easyim import EaSyIMSelector
from repro.algorithms.greedy import CELFPlusPlusSelector, CELFSelector, GreedySelector
from repro.algorithms.imm import IMMSelector
from repro.algorithms.irie import IRIESelector
from repro.algorithms.modified_greedy import ModifiedGreedySelector
from repro.algorithms.osim import OSIMSelector
from repro.algorithms.pagerank import PageRankSelector
from repro.algorithms.path_union import PathUnionSelector
from repro.algorithms.random_seeds import RandomSelector
from repro.algorithms.simpath import SimPathSelector
from repro.algorithms.tim import TIMPlusSelector
from repro.exceptions import ConfigurationError

_REGISTRY: Dict[str, Type[SeedSelector]] = {
    "random": RandomSelector,
    "high-degree": HighDegreeSelector,
    "single-discount": SingleDiscountSelector,
    "degree-discount": DegreeDiscountSelector,
    "pagerank": PageRankSelector,
    "greedy": GreedySelector,
    "celf": CELFSelector,
    "celf++": CELFPlusPlusSelector,
    "modified-greedy": ModifiedGreedySelector,
    "easyim": EaSyIMSelector,
    "osim": OSIMSelector,
    "path-union": PathUnionSelector,
    "irie": IRIESelector,
    "simpath": SimPathSelector,
    "tim+": TIMPlusSelector,
    "imm": IMMSelector,
}

#: Algorithms that optimise an opinion-aware objective out of the box.
OPINION_AWARE_ALGORITHMS = frozenset({"osim", "modified-greedy"})


def available_algorithms() -> list[str]:
    """Sorted list of the registered algorithm identifiers."""
    return sorted(_REGISTRY)


def get_algorithm(name: str, **kwargs: object) -> SeedSelector:
    """Instantiate the algorithm registered under ``name`` with ``kwargs``."""
    if isinstance(name, SeedSelector):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return _REGISTRY[key](**kwargs)  # type: ignore[arg-type]
