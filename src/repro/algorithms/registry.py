"""Name-based lookup of seed-selection algorithms, with capability metadata.

Mirrors :mod:`repro.diffusion.registry` for algorithms: the public API, the
CLI and the benchmark harness ask for algorithms by short string identifiers
and pass configuration as keyword arguments.

Each registry entry is an :class:`AlgorithmInfo` declaring what the
algorithm's constructor understands (model / objective / penalty / seed /
...), so callers like :class:`~repro.core.maximizer.InfluenceMaximizer` and
:func:`repro.api.run_experiment` inject context by *capability* instead of
maintaining hard-coded name sets.  ``supported_models`` restricts which
diffusion models an algorithm accepts (``None`` means any registered model);
``base_model_fallback`` marks the RIS algorithms, which understand only the
opinion-oblivious first layer of an opinion-aware model and may be handed
its ic/wc/lt base layer instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.algorithms.base import SeedSelector
from repro.algorithms.degree import (
    DegreeDiscountSelector,
    HighDegreeSelector,
    SingleDiscountSelector,
)
from repro.algorithms.easyim import EaSyIMSelector
from repro.algorithms.greedy import CELFPlusPlusSelector, CELFSelector, GreedySelector
from repro.algorithms.imm import IMMSelector
from repro.algorithms.irie import IRIESelector
from repro.algorithms.modified_greedy import ModifiedGreedySelector
from repro.algorithms.osim import OSIMSelector
from repro.algorithms.pagerank import PageRankSelector
from repro.algorithms.path_union import PathUnionSelector
from repro.algorithms.random_seeds import RandomSelector
from repro.algorithms.simpath import SimPathSelector
from repro.algorithms.tim import TIMPlusSelector
from repro.exceptions import ConfigurationError
from repro.sketches.sampler import SUPPORTED_MODELS as _RIS_SUPPORTED_MODELS

#: The opinion-oblivious base layers the RIS stack samples under (the one
#: definition lives with the sampler; this is the set view capability
#: metadata uses).
RIS_MODELS = frozenset(_RIS_SUPPORTED_MODELS)


@dataclass(frozen=True)
class AlgorithmInfo:
    """Constructor capabilities of one registered seed-selection algorithm."""

    name: str
    cls: Type[SeedSelector]
    #: Accepts a ``model=`` keyword (string name or model instance).
    model_aware: bool = False
    #: Accepts an ``objective=`` keyword (spread / opinion / effective-opinion).
    objective_aware: bool = False
    #: Accepts a ``penalty=`` keyword (the MEO lambda).
    penalty_aware: bool = False
    #: Accepts a ``seed=`` keyword controlling the selector's own RNG.
    seedable: bool = False
    #: Accepts a ``simulations=`` keyword (Monte-Carlo greedy family).
    simulation_aware: bool = False
    #: Accepts a ``max_path_length=`` keyword (the paper's ``l``).
    path_length_aware: bool = False
    #: Accepts ``incremental=`` / ``fallback_fraction=`` (score engine).
    incremental: bool = False
    #: Optimises an opinion-aware objective out of the box.
    opinion_aware: bool = False
    #: Diffusion models the algorithm accepts; ``None`` means any registered.
    supported_models: Optional[frozenset] = None
    #: When the model is unsupported, may it be coerced to its ic/wc/lt base
    #: layer (the RIS algorithms only see the opinion-oblivious first layer)?
    base_model_fallback: bool = False
    #: Accepts a ``max_rr_sets=`` keyword (RIS sampling cap).
    rr_set_aware: bool = False


_REGISTRY: Dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo("random", RandomSelector, seedable=True),
        AlgorithmInfo("high-degree", HighDegreeSelector),
        AlgorithmInfo("single-discount", SingleDiscountSelector),
        AlgorithmInfo("degree-discount", DegreeDiscountSelector),
        AlgorithmInfo("pagerank", PageRankSelector),
        AlgorithmInfo(
            "greedy", GreedySelector,
            model_aware=True, objective_aware=True, penalty_aware=True,
            seedable=True, simulation_aware=True,
        ),
        AlgorithmInfo(
            "celf", CELFSelector,
            model_aware=True, objective_aware=True, penalty_aware=True,
            seedable=True, simulation_aware=True,
        ),
        AlgorithmInfo(
            "celf++", CELFPlusPlusSelector,
            model_aware=True, objective_aware=True, penalty_aware=True,
            seedable=True, simulation_aware=True,
        ),
        AlgorithmInfo(
            "modified-greedy", ModifiedGreedySelector,
            model_aware=True, penalty_aware=True, seedable=True,
            simulation_aware=True, opinion_aware=True,
        ),
        AlgorithmInfo(
            "easyim", EaSyIMSelector,
            model_aware=True, seedable=True, path_length_aware=True,
            incremental=True,
        ),
        AlgorithmInfo(
            "osim", OSIMSelector,
            model_aware=True, seedable=True, path_length_aware=True,
            incremental=True, opinion_aware=True,
        ),
        AlgorithmInfo(
            "path-union", PathUnionSelector,
            model_aware=True, seedable=True, path_length_aware=True,
        ),
        AlgorithmInfo("irie", IRIESelector),
        AlgorithmInfo("simpath", SimPathSelector),
        AlgorithmInfo(
            "tim+", TIMPlusSelector,
            model_aware=True, seedable=True, supported_models=RIS_MODELS,
            base_model_fallback=True, rr_set_aware=True,
        ),
        AlgorithmInfo(
            "imm", IMMSelector,
            model_aware=True, seedable=True, supported_models=RIS_MODELS,
            base_model_fallback=True, rr_set_aware=True,
        ),
    )
}

#: Algorithms that optimise an opinion-aware objective out of the box
#: (derived from the capability metadata; kept for backwards compatibility).
OPINION_AWARE_ALGORITHMS = frozenset(
    name for name, info in _REGISTRY.items() if info.opinion_aware
)


def available_algorithms() -> list[str]:
    """Sorted list of the registered algorithm identifiers."""
    return sorted(_REGISTRY)


def algorithm_info(name: str) -> AlgorithmInfo:
    """Capability metadata for the algorithm registered under ``name``."""
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return _REGISTRY[key]


def algorithm_capabilities() -> Dict[str, Dict[str, object]]:
    """Capability table for every registered algorithm (docs / CLI / specs).

    Flags that are ``False`` and an unrestricted ``supported_models`` are
    omitted, so the table reads as "what is special about this algorithm".
    """
    table: Dict[str, Dict[str, object]] = {}
    for name in available_algorithms():
        info = _REGISTRY[name]
        row: Dict[str, object] = {}
        for flag in (
            "model_aware", "objective_aware", "penalty_aware", "seedable",
            "simulation_aware", "path_length_aware", "incremental",
            "opinion_aware", "base_model_fallback", "rr_set_aware",
        ):
            if getattr(info, flag):
                row[flag] = True
        if info.supported_models is not None:
            row["supported_models"] = sorted(info.supported_models)
        table[name] = row
    return table


def base_model_layer(model_name: str) -> str:
    """The ic/wc/lt base layer of a (possibly opinion-aware) model name.

    The RIS algorithms sample reverse-reachable sets under the
    opinion-oblivious first layer of the diffusion process; ``oi-lt`` maps
    to ``lt``, ``oi-wc`` to ``wc``, everything else (``oi-ic``, ``icn``,
    ``oc``, ``ic`` itself) to ``ic``.
    """
    name = str(model_name).lower()
    if name in RIS_MODELS:
        return name
    # Match by name segment, not suffix: "lt-live-edge" is an LT-equivalent
    # sampler, not an IC variant.
    parts = name.split("-")
    if "lt" in parts:
        return "lt"
    if "wc" in parts:
        return "wc"
    return "ic"


def check_model_support(name: str, model_name: str) -> None:
    """Raise :class:`ConfigurationError` if ``name`` rejects ``model_name``.

    The error lists the models the algorithm does support, per the
    capability metadata.
    """
    info = algorithm_info(name)
    if info.supported_models is not None and model_name not in info.supported_models:
        raise ConfigurationError(
            f"algorithm {info.name!r} only supports the "
            f"{'/'.join(sorted(info.supported_models))} models, got "
            f"{model_name!r}; pick one of those or an algorithm without the "
            "restriction (see repro.algorithms.registry.algorithm_capabilities())"
        )


def get_algorithm(name: str, **kwargs: object) -> SeedSelector:
    """Instantiate the algorithm registered under ``name`` with ``kwargs``."""
    if isinstance(name, SeedSelector):
        return name
    return algorithm_info(name).cls(**kwargs)  # type: ignore[arg-type]
