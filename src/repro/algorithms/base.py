"""Seed-selector interface and result container.

Every algorithm exposes the same contract: construct with its configuration,
then call :meth:`SeedSelector.select` with a graph and a budget ``k``.  The
result records the seeds *in selection order*, which lets the benchmark
harness evaluate every prefix (the ``k``-sweeps in the paper's figures)
without re-running the algorithm per ``k``.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import AlgorithmError, ConfigurationError
from repro.graphs.digraph import CompiledGraph, DiGraph, Node
from repro.utils.validation import check_budget


@dataclass
class SeedSelectionResult:
    """Outcome of a seed-selection run.

    Attributes
    ----------
    seeds:
        Selected seed node labels, in the order the algorithm picked them.
    algorithm:
        Identifier of the algorithm that produced the result.
    budget:
        The requested ``k``.
    runtime_seconds:
        Wall-clock time spent inside :meth:`SeedSelector.select`.
    scores:
        Optional per-node score map produced by score-assignment algorithms
        (EaSyIM, OSIM, PU, IRIE); useful for diagnostics and tests.
    metadata:
        Algorithm-specific extras (number of RR sets, simulations run, ...).
    """

    seeds: List[Node]
    algorithm: str
    budget: int
    runtime_seconds: float = 0.0
    scores: Optional[Dict[Node, float]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def prefix(self, k: int) -> List[Node]:
        """The first ``k`` selected seeds (for k-sweep evaluation)."""
        if k < 0 or k > len(self.seeds):
            raise ConfigurationError(f"k must be in 0..{len(self.seeds)}, got {k}")
        return self.seeds[:k]

    def __len__(self) -> int:
        return len(self.seeds)

    def __iter__(self):
        return iter(self.seeds)


class SeedSelector(abc.ABC):
    """Base class for all seed-selection algorithms."""

    #: Short identifier used by the algorithm registry and the CLI.
    name: str = "base"

    #: Whether the algorithm optimises an opinion-aware objective.
    opinion_aware: bool = False

    @abc.abstractmethod
    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        """Return ``(seed_indices, metadata)`` on the compiled graph."""

    def select(self, graph: Union[DiGraph, CompiledGraph], budget: int) -> SeedSelectionResult:
        """Select ``budget`` seeds on ``graph``.

        The graph may be a mutable :class:`DiGraph` (compiled internally) or a
        pre-compiled :class:`CompiledGraph` when the caller wants to amortise
        compilation across algorithms.
        """
        compiled = graph.compile() if isinstance(graph, DiGraph) else graph
        check_budget("budget", budget, compiled.number_of_nodes)
        started = time.perf_counter()
        indices, metadata = self._select(compiled, budget)
        elapsed = time.perf_counter() - started
        if len(indices) != budget:
            raise AlgorithmError(
                f"{self.name} returned {len(indices)} seeds for budget {budget}"
            )
        if len(set(indices)) != len(indices):
            raise AlgorithmError(f"{self.name} returned duplicate seeds")
        scores = metadata.pop("scores", None)
        if scores is not None:
            scores = {compiled.labels[i]: float(s) for i, s in scores.items()}
        return SeedSelectionResult(
            seeds=compiled.labels_for(indices),
            algorithm=self.name,
            budget=budget,
            runtime_seconds=elapsed,
            scores=scores,
            metadata=metadata,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def top_k_by_score(scores: Sequence[float], k: int, excluded: set[int] = frozenset()) -> list[int]:
    """Indices of the ``k`` largest scores, ties broken by smaller index."""
    order = sorted(
        (i for i in range(len(scores)) if i not in excluded),
        key=lambda i: (-scores[i], i),
    )
    return order[:k]
