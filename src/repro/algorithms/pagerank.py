"""PageRank-based seed selection baseline.

Influence flows along out-edges, so the ranking is computed on the *reverse*
graph (a node is important when many influenceable nodes point to it through
reversed edges) — the convention used in the IM literature when PageRank is
used as a seeding heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SeedSelector, top_k_by_score
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph


def pagerank_scores(
    graph: CompiledGraph,
    damping: float = 0.85,
    iterations: int = 100,
    tolerance: float = 1e-10,
    reverse: bool = True,
) -> np.ndarray:
    """Power-iteration PageRank on the compiled graph.

    With ``reverse=True`` (default) the walk follows in-edges, which ranks
    nodes by their ability to *reach* others along forward edges.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(f"damping must lie in (0, 1), got {damping}")
    n = graph.number_of_nodes
    if n == 0:
        return np.zeros(0)
    ranks = np.full(n, 1.0 / n)
    # Walking the reverse graph means distributing rank along in-edges,
    # i.e. rank flows from v to u for each edge (u -> v).
    if reverse:
        indptr, indices = graph.in_indptr, graph.in_indices
    else:
        indptr, indices = graph.out_indptr, graph.out_indices
    # Degree of the *source* of each traversed edge in the walk direction.
    walk_out_degree = np.diff(indptr).astype(np.float64)
    for _ in range(iterations):
        contributions = np.zeros(n)
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(walk_out_degree > 0, ranks / walk_out_degree, 0.0)
        for node in range(n):
            start, end = indptr[node], indptr[node + 1]
            if start == end:
                continue
            contributions[indices[start:end]] += share[node]
        dangling = ranks[walk_out_degree == 0].sum()
        new_ranks = (1.0 - damping) / n + damping * (contributions + dangling / n)
        if np.abs(new_ranks - ranks).sum() < tolerance:
            ranks = new_ranks
            break
        ranks = new_ranks
    return ranks


class PageRankSelector(SeedSelector):
    """Select the ``k`` nodes with the highest (reverse) PageRank."""

    name = "pagerank"

    def __init__(self, damping: float = 0.85, iterations: int = 100) -> None:
        self.damping = damping
        self.iterations = iterations

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        ranks = pagerank_scores(graph, damping=self.damping, iterations=self.iterations)
        seeds = top_k_by_score(ranks.tolist(), budget)
        return seeds, {"scores": {i: float(ranks[i]) for i in seeds}}
