"""Uniform-random seed selection — the weakest baseline."""

from __future__ import annotations

from repro.algorithms.base import SeedSelector
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState, ensure_rng


class RandomSelector(SeedSelector):
    """Pick ``k`` distinct nodes uniformly at random."""

    name = "random"

    def __init__(self, seed: RandomState = None) -> None:
        self._rng = ensure_rng(seed)

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        chosen = self._rng.choice(graph.number_of_nodes, size=budget, replace=False)
        return [int(i) for i in chosen], {}
