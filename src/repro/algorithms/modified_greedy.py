"""Modified-GREEDY (Appendix A of the paper).

The quality baseline for the MEO problem: at every step add the node with the
largest marginal gain in *effective opinion spread* ``Gamma^o_lambda``.
Because the effective opinion spread is neither monotone nor submodular
(Lemma 2), the (1 - 1/e) guarantee does not apply — the paper uses this
algorithm purely as the best-effort quality reference that OSIM is compared
against in Figs. 5f/5g/5h and 7b.
"""

from __future__ import annotations

from typing import Union

from repro.algorithms.greedy import GreedySelector
from repro.diffusion.base import DiffusionModel
from repro.utils.rng import RandomState


class ModifiedGreedySelector(GreedySelector):
    """Greedy maximisation of the effective opinion spread under an opinion-aware model."""

    name = "modified-greedy"
    opinion_aware = True

    def __init__(
        self,
        model: Union[str, DiffusionModel] = "oi-ic",
        simulations: int = 200,
        penalty: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        super().__init__(
            model=model,
            simulations=simulations,
            objective="effective-opinion",
            penalty=penalty,
            seed=seed,
        )
