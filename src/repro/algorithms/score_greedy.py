"""The ScoreGREEDY driver (Algorithm 1 of the paper).

ScoreGREEDY repeatedly (1) runs a score-assignment routine on the residual
graph (contributions of previously activated nodes discounted), (2) selects
the highest-scoring unactivated node as the next seed, and (3) updates the set
of activated nodes ``V_(a)`` with the nodes the new seed activates, so later
iterations do not pay for influence that is already covered.

Step (3) is implemented by Monte-Carlo simulation from the newly selected
seed; the paper leaves the estimator unspecified, so three strategies are
provided:

* ``"single"`` (default) — one simulated cascade, the cheapest option and the
  one used by the authors' reference implementation of ASIM/EaSyIM;
* ``"majority"`` — nodes activated in more than half of ``update_simulations``
  cascades, a lower-variance alternative;
* ``"none"`` — only the seed itself is marked active (pure score ranking).

Two selection paths share the driver:

* the historical **full-recompute** path calls ``score_function`` on the
  whole graph every iteration (still used for custom score functions such as
  Path-Union, and as the reference the incremental path is tested against);
* the **incremental** path maintains a
  :class:`~repro.scoring.engine.ScoreEngine` whose ``mark_active`` repairs
  scores only inside the l-hop reverse ball of the newly activated nodes,
  with the running argmax repaired lazily instead of recomputed.  Both paths
  draw the same RNG stream and select bit-for-bit identical seed sets.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.diffusion.base import DiffusionModel
from repro.diffusion.registry import get_model
from repro.exceptions import BudgetError, ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState, ensure_rng

#: Signature of a score-assignment routine: (graph, active_mask) -> scores.
ScoreFunction = Callable[[CompiledGraph, np.ndarray], np.ndarray]

#: Signature of an engine factory: graph -> ScoreEngine (see repro.scoring).
EngineFactory = Callable[[CompiledGraph], "object"]

_UPDATE_STRATEGIES = ("single", "majority", "none")


class ScoreGreedySelector(SeedSelector):
    """Generic ScoreGREEDY driver parameterised by a score-assignment function
    and, optionally, an incremental score-engine factory."""

    name = "score-greedy"

    def __init__(
        self,
        score_function: Optional[ScoreFunction] = None,
        model: Union[str, DiffusionModel] = "ic",
        update_strategy: str = "single",
        update_simulations: int = 10,
        seed: RandomState = None,
        engine_factory: Optional[EngineFactory] = None,
    ) -> None:
        if update_strategy not in _UPDATE_STRATEGIES:
            raise ConfigurationError(
                f"update_strategy must be one of {_UPDATE_STRATEGIES}, "
                f"got {update_strategy!r}"
            )
        if update_simulations < 1:
            raise ConfigurationError(
                f"update_simulations must be >= 1, got {update_simulations}"
            )
        if score_function is None and engine_factory is None:
            raise ConfigurationError(
                "ScoreGreedySelector needs a score_function, an "
                "engine_factory, or both"
            )
        self.score_function = score_function
        self.engine_factory = engine_factory
        self.model = get_model(model) if isinstance(model, str) else model
        self.update_strategy = update_strategy
        self.update_simulations = update_simulations
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        if self.engine_factory is not None:
            return self._select_incremental(graph, budget)
        return self._select_full(graph, budget)

    def _select_full(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        """Historical path: full score recompute every iteration."""
        n = graph.number_of_nodes
        active = np.zeros(n, dtype=bool)
        selected: list[int] = []
        final_scores: dict[int, float] = {}
        for _ in range(budget):
            scores = self.score_function(graph, active)
            scores = np.where(active, -np.inf, scores)
            best = int(np.argmax(scores))
            if not np.isfinite(scores[best]):
                best = self._fallback_candidate(n, active, selected, budget)
                final_scores[best] = 0.0
            else:
                final_scores[best] = float(scores[best])
            selected.append(best)
            active[self._activation_update(graph, best)] = True
        return selected, {
            "scores": final_scores,
            "update_strategy": self.update_strategy,
        }

    def _select_incremental(
        self, graph: CompiledGraph, budget: int
    ) -> tuple[list[int], dict]:
        """Engine path: scores repaired in place, argmax repaired lazily."""
        n = graph.number_of_nodes
        engine = self.engine_factory(graph)
        selected: list[int] = []
        final_scores: dict[int, float] = {}
        for _ in range(budget):
            best = engine.best_inactive()
            if best is None:
                # Every node is already activated (the heap only empties when
                # no inactive node remains) — same fallback as the full path.
                best = self._fallback_candidate(n, engine.active, selected, budget)
                final_scores[best] = 0.0
            else:
                final_scores[best] = engine.score_of(best)
            selected.append(best)
            engine.mark_active(self._activation_update(graph, best))
        return selected, {
            "scores": final_scores,
            "update_strategy": self.update_strategy,
            "engine": dict(engine.stats),
        }

    @staticmethod
    def _fallback_candidate(
        n: int, active: np.ndarray, selected: list[int], budget: int
    ) -> int:
        """Any inactive node, or an arbitrary unselected one."""
        remaining = np.flatnonzero(~active)
        if remaining.size == 0:
            remaining = np.array(
                [i for i in range(n) if i not in selected], dtype=np.int64
            )
        if remaining.size == 0:
            # Only reachable when _select is driven directly with a
            # budget exceeding the node count (select() validates).
            raise BudgetError(budget, n)
        return int(remaining[0])

    # ------------------------------------------------------------- updates

    def _activation_update(self, graph: CompiledGraph, seed: int) -> np.ndarray:
        """Node indices activated by the freshly selected ``seed``.

        Independent of the currently active set (the caller unions).  Both
        simulation strategies run through :meth:`DiffusionModel.simulate_batch`,
        so the re-estimation cascades are advanced by the vectorized kernels
        and the per-cascade activation masks combine with plain matrix
        reductions.
        """
        if self.update_strategy == "none":
            return np.array([seed], dtype=np.int64)
        if self.update_strategy == "single":
            outcome = self.model.simulate_batch(graph, [seed], self._rng, 1)
            mask = outcome.active[0].copy()
        else:
            outcome = self.model.simulate_batch(
                graph, [seed], self._rng, self.update_simulations
            )
            counts = outcome.active.sum(axis=0)
            mask = counts > self.update_simulations / 2
        mask[seed] = True
        return np.flatnonzero(mask)
