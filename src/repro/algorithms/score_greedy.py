"""The ScoreGREEDY driver (Algorithm 1 of the paper).

ScoreGREEDY repeatedly (1) runs a score-assignment routine on the residual
graph (contributions of previously activated nodes discounted), (2) selects
the highest-scoring unactivated node as the next seed, and (3) updates the set
of activated nodes ``V_(a)`` with the nodes the new seed activates, so later
iterations do not pay for influence that is already covered.

Step (3) is implemented by Monte-Carlo simulation from the newly selected
seed; the paper leaves the estimator unspecified, so three strategies are
provided:

* ``"single"`` (default) — one simulated cascade, the cheapest option and the
  one used by the authors' reference implementation of ASIM/EaSyIM;
* ``"majority"`` — nodes activated in more than half of ``update_simulations``
  cascades, a lower-variance alternative;
* ``"none"`` — only the seed itself is marked active (pure score ranking).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.diffusion.base import DiffusionModel
from repro.diffusion.registry import get_model
from repro.exceptions import BudgetError, ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState, ensure_rng

#: Signature of a score-assignment routine: (graph, active_mask) -> scores.
ScoreFunction = Callable[[CompiledGraph, np.ndarray], np.ndarray]

_UPDATE_STRATEGIES = ("single", "majority", "none")


class ScoreGreedySelector(SeedSelector):
    """Generic ScoreGREEDY driver parameterised by a score-assignment function."""

    name = "score-greedy"

    def __init__(
        self,
        score_function: ScoreFunction,
        model: Union[str, DiffusionModel] = "ic",
        update_strategy: str = "single",
        update_simulations: int = 10,
        seed: RandomState = None,
    ) -> None:
        if update_strategy not in _UPDATE_STRATEGIES:
            raise ConfigurationError(
                f"update_strategy must be one of {_UPDATE_STRATEGIES}, "
                f"got {update_strategy!r}"
            )
        if update_simulations < 1:
            raise ConfigurationError(
                f"update_simulations must be >= 1, got {update_simulations}"
            )
        self.score_function = score_function
        self.model = get_model(model) if isinstance(model, str) else model
        self.update_strategy = update_strategy
        self.update_simulations = update_simulations
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------ selection

    def _select(self, graph: CompiledGraph, budget: int) -> tuple[list[int], dict]:
        n = graph.number_of_nodes
        active = np.zeros(n, dtype=bool)
        selected: list[int] = []
        final_scores: dict[int, float] = {}
        for _ in range(budget):
            scores = self.score_function(graph, active)
            scores = np.where(active, -np.inf, scores)
            best = int(np.argmax(scores))
            if not np.isfinite(scores[best]):
                # Every remaining node is already activated; fall back to any
                # inactive node, or to an arbitrary unselected one.
                remaining = np.flatnonzero(~active)
                if remaining.size == 0:
                    remaining = np.array(
                        [i for i in range(n) if i not in selected], dtype=np.int64
                    )
                if remaining.size == 0:
                    # Only reachable when _select is driven directly with a
                    # budget exceeding the node count (select() validates).
                    raise BudgetError(budget, n)
                best = int(remaining[0])
            selected.append(best)
            final_scores[best] = float(scores[best]) if np.isfinite(scores[best]) else 0.0
            self._mark_activated(graph, best, active)
        return selected, {"scores": final_scores, "update_strategy": self.update_strategy}

    # ------------------------------------------------------------- updates

    def _mark_activated(self, graph: CompiledGraph, seed: int, active: np.ndarray) -> None:
        """Update ``active`` in place with the nodes activated by ``seed``.

        Both strategies run through :meth:`DiffusionModel.simulate_batch`, so
        the re-estimation cascades are advanced by the vectorized kernels and
        the per-cascade activation masks combine with plain matrix reductions.
        """
        active[seed] = True
        if self.update_strategy == "none":
            return
        if self.update_strategy == "single":
            outcome = self.model.simulate_batch(graph, [seed], self._rng, 1)
            active |= outcome.active[0]
            return
        outcome = self.model.simulate_batch(
            graph, [seed], self._rng, self.update_simulations
        )
        counts = outcome.active.sum(axis=0)
        active[counts > self.update_simulations / 2] = True
