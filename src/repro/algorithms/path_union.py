"""The Path-Union (PU) algorithm — Algorithm 3 of the paper.

PU maintains an ``n x n`` matrix whose entry ``(u, v)`` approximates the
probability that ``u`` influences ``v`` through walks of bounded length.  The
matrix is repeatedly combined with the probability-annotated adjacency matrix
under the ``⊗`` operator, which aggregates parallel contributions with a
probabilistic OR (inclusion–exclusion to first order), and the diagonal is
zeroed after each multiplication to discount walks that return to their
origin.

PU runs in ``O(l * n^3)`` time and ``O(n^2)`` space, so it is only practical
for small graphs; the paper uses it as the analytical reference that EaSyIM
approximates (Lemmas 5-6), and this implementation fills the same role in the
tests and the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.algorithms.easyim import DEFAULT_MAX_PATH_LENGTH
from repro.algorithms.score_greedy import ScoreGreedySelector
from repro.diffusion.base import DiffusionModel
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import CompiledGraph
from repro.utils.rng import RandomState


def probability_matrix(graph: CompiledGraph) -> np.ndarray:
    """Dense matrix ``M`` with ``M[u, v] = p_(u,v)`` (0 when no edge)."""
    n = graph.number_of_nodes
    matrix = np.zeros((n, n), dtype=np.float64)
    for u in range(n):
        start, end = graph.out_indptr[u], graph.out_indptr[u + 1]
        matrix[u, graph.out_indices[start:end]] = graph.out_probability[start:end]
    return matrix


def otimes(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """The paper's ``⊗`` operator: matrix product with probabilistic-OR aggregation.

    ``(left ⊗ right)[i, j] = 1 - prod_k (1 - left[i, k] * right[k, j])`` —
    parallel walk contributions are combined as independent events instead of
    being summed, which keeps every entry a probability.
    """
    if left.shape[1] != right.shape[0]:
        raise ConfigurationError(
            f"inner dimensions do not match: {left.shape} vs {right.shape}"
        )
    result = np.empty((left.shape[0], right.shape[1]), dtype=np.float64)
    for i in range(left.shape[0]):
        # products[k, j] = left[i, k] * right[k, j]
        products = left[i][:, None] * right
        result[i] = 1.0 - np.prod(1.0 - products, axis=0)
    return result


def path_union_scores(
    graph: CompiledGraph,
    active: Optional[np.ndarray] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    cycle_discount: bool = True,
) -> np.ndarray:
    """Assign PU scores ``Delta_l`` to every node.

    Parameters
    ----------
    cycle_discount:
        When ``True`` (the algorithm as published) the diagonal of the running
        matrix is zeroed after every ``⊗`` step, removing walks that return to
        their starting node.  Setting it to ``False`` exposes the error those
        cycles introduce — used by the ablation benchmark.
    """
    if max_path_length < 1:
        raise ConfigurationError(
            f"max_path_length must be >= 1, got {max_path_length}"
        )
    n = graph.number_of_nodes
    if active is None:
        active = np.zeros(n, dtype=bool)
    matrix = probability_matrix(graph)
    # Remove the contribution of previously activated nodes entirely.
    matrix[:, active] = 0.0
    matrix[active, :] = 0.0

    running = np.eye(n, dtype=np.float64)
    delta = np.zeros(n, dtype=np.float64)
    for _ in range(max_path_length):
        running = otimes(running, matrix)
        if cycle_discount:
            np.fill_diagonal(running, 0.0)
        delta = delta + running.sum(axis=1)
    return delta


class PathUnionSelector(ScoreGreedySelector):
    """ScoreGREEDY with PU score assignment (exact but cubic; small graphs only)."""

    name = "path-union"

    def __init__(
        self,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        model: Union[str, DiffusionModel] = "ic",
        cycle_discount: bool = True,
        update_strategy: str = "single",
        update_simulations: int = 10,
        seed: RandomState = None,
    ) -> None:
        self.max_path_length = max_path_length
        self.cycle_discount = cycle_discount

        def score(graph: CompiledGraph, active: np.ndarray) -> np.ndarray:
            return path_union_scores(
                graph,
                active=active,
                max_path_length=self.max_path_length,
                cycle_discount=self.cycle_discount,
            )

        super().__init__(
            score_function=score,
            model=model,
            update_strategy=update_strategy,
            update_simulations=update_simulations,
            seed=seed,
        )
