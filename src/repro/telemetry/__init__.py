"""Observability for the reproduction: metrics, trace spans, exporters.

Three small modules:

* :mod:`repro.telemetry.registry` — thread-safe :class:`Counter`,
  :class:`Gauge` and :class:`Histogram` families behind a
  :class:`MetricsRegistry`, plus the process-global default registry the
  engines record into (swap/reset/scoped hooks for tests).
* :mod:`repro.telemetry.tracing` — :func:`span` context managers with
  monotonic timings, per-thread parent links and deterministic SplitMix64
  span IDs, collected by a :class:`TraceRecorder` ring buffer.
* :mod:`repro.telemetry.export` — Prometheus text format v0.0.4, JSON
  snapshots, Chrome ``trace_event`` dumps, and the ``/metrics``
  background server used by ``repro serve --metrics-port``.

Everything is dependency-free (stdlib only) and safe to import from any
layer; the serving stack and all four engines instrument through the
module-level hooks, which cost one attribute read when telemetry is off.
"""

from repro.telemetry.export import (
    MetricsServer,
    chrome_trace,
    render_json,
    render_prometheus,
    snapshot,
)
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    METRIC_NAME_PATTERN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_default_registry,
    use_registry,
)
from repro.telemetry.tracing import (
    NULL_SPAN,
    Span,
    TraceRecorder,
    current_recorder,
    install_recorder,
    recording,
    span,
    uninstall_recorder,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_NAME_PATTERN",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_SPAN",
    "Span",
    "TraceRecorder",
    "chrome_trace",
    "current_recorder",
    "default_registry",
    "install_recorder",
    "recording",
    "render_json",
    "render_prometheus",
    "reset_default_registry",
    "set_default_registry",
    "snapshot",
    "span",
    "uninstall_recorder",
    "use_registry",
]
