"""Thread-safe metrics primitives: counters, gauges and histograms.

A :class:`MetricsRegistry` owns a flat namespace of metric *families*.  A
family is a named :class:`Counter`, :class:`Gauge` or :class:`Histogram`;
with ``labelnames`` it fans out into labeled children
(``requests.labels(op="evaluate", outcome="degraded").inc()``), without
them the family itself carries the single sample.  Registration is
get-or-create and idempotent, so instrumentation sites can fetch handles
lazily without coordinating; re-registering a name with a different type
or label set raises :class:`~repro.exceptions.ConfigurationError`.

**Naming.**  Metric names are ``snake_case`` with a mandatory ``repro_``
prefix (enforced here at runtime and by lint rule REP009 statically), so
every series this package emits is recognisable in a shared Prometheus.

**The process-global default registry.**  Engine-level instrumentation
(samplers, Monte Carlo blocks, score rescoring) records to the registry
returned by :func:`default_registry`.  The same trick as
``repro.serving.faults``: the hook is one module attribute read, and
``set_default_registry(None)`` disables collection entirely — instrumented
hot loops guard on the ``None`` and pay a single attribute read when
telemetry is off.  Tests isolate themselves with :func:`use_registry`.

Histograms keep fixed log-spaced latency buckets *plus* an exact running
``count``/``sum``, so p50/p95/p99 are derivable (to bucket resolution)
from any snapshot without storing individual observations.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_NAME_PATTERN",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "set_default_registry",
    "use_registry",
]

#: Runtime twin of lint rule REP009: snake_case with the project prefix.
METRIC_NAME_PATTERN = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_LABEL_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")

#: Log-spaced 1-2.5-5 decades from 0.1 ms to 50 s: wide enough for a block
#: build, fine enough that a p99 derived from the buckets lands within one
#: bucket of the exact value for serving-shaped latency distributions.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(base * 10.0**exponent, 10)
    for exponent in range(-4, 2)
    for base in (1.0, 2.5, 5.0)
)


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not METRIC_NAME_PATTERN.match(name):
        raise ConfigurationError(
            f"metric name {name!r} must be snake_case with a 'repro_' "
            f"prefix (pattern {METRIC_NAME_PATTERN.pattern})"
        )
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate label names in {names!r}")
    for label in names:
        if not isinstance(label, str) or not _LABEL_NAME_PATTERN.match(label):
            raise ConfigurationError(
                f"label name {label!r} must match "
                f"{_LABEL_NAME_PATTERN.pattern}"
            )
        if label == "le":
            raise ConfigurationError(
                "label name 'le' is reserved for histogram buckets"
            )
    return names


class _Child:
    """Base class for one labeled sample; shares its family's lock."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class CounterChild(_Child):
    """A monotonically increasing sample."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot inc() by {amount!r}"
            )
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild(_Child):
    """A sample that can go up and down (queue depth, breaker state)."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: Union[int, float] = 1.0) -> None:
        with self._lock:
            self._value -= float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild(_Child):
    """Bucketed observations plus exact running count and sum."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]) -> None:
        super().__init__(lock)
        self._bounds = bounds
        # One slot per finite bound plus the implicit +Inf bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self._bounds, value)] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        cumulative = 0
        pairs: List[Tuple[float, int]] = []
        for bound, count in zip(self._bounds + (math.inf,), counts):
            cumulative += count
            pairs.append((bound, cumulative))
        return pairs

    def quantile(self, q: float) -> float:
        """Derive the q-quantile from the buckets (bucket resolution).

        Linear interpolation inside the containing bucket; observations in
        the ``+Inf`` bucket report the largest finite bound, the best
        statement the fixed buckets can make.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for position, count in enumerate(counts):
            if cumulative + count >= rank and count > 0:
                lower = self._bounds[position - 1] if position > 0 else 0.0
                if position >= len(self._bounds):
                    return self._bounds[-1]
                upper = self._bounds[position]
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += count
        return self._bounds[-1]


class MetricFamily:
    """A named metric with optional label dimensions."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        documentation: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = _validate_name(name)
        self.documentation = documentation
        self.labelnames = _validate_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> _Child:
        raise NotImplementedError

    def labels(self, **labelvalues: Union[str, int, float]) -> _Child:
        if set(labelvalues) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
        return child

    def _unlabeled(self) -> _Child:
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled by "
                f"{list(self.labelnames)}; use .labels(...)"
            )
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """``(labelvalues, child)`` pairs in sorted label order."""
        with self._lock:
            return sorted(self._children.items())


class Counter(MetricFamily):
    """A monotonically increasing metric family."""

    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild(self._lock)

    def inc(self, amount: Union[int, float] = 1.0) -> None:
        child = self._unlabeled()
        assert isinstance(child, CounterChild)
        child.inc(amount)

    @property
    def value(self) -> float:
        child = self._unlabeled()
        assert isinstance(child, CounterChild)
        return child.value


class Gauge(MetricFamily):
    """A metric family that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild(self._lock)

    def set(self, value: Union[int, float]) -> None:
        child = self._unlabeled()
        assert isinstance(child, GaugeChild)
        child.set(value)

    def inc(self, amount: Union[int, float] = 1.0) -> None:
        child = self._unlabeled()
        assert isinstance(child, GaugeChild)
        child.inc(amount)

    def dec(self, amount: Union[int, float] = 1.0) -> None:
        child = self._unlabeled()
        assert isinstance(child, GaugeChild)
        child.dec(amount)

    @property
    def value(self) -> float:
        child = self._unlabeled()
        assert isinstance(child, GaugeChild)
        return child.value


class Histogram(MetricFamily):
    """A bucketed metric family with exact count/sum per child."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        documentation: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(
            float(bound)
            for bound in (buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        )
        if not bounds:
            raise ConfigurationError("a histogram needs at least one bucket")
        if any(not math.isfinite(bound) for bound in bounds):
            raise ConfigurationError(
                "histogram buckets must be finite (+Inf is implicit)"
            )
        if any(upper <= lower for lower, upper in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        super().__init__(name, documentation, labelnames)

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self._lock, self.buckets)

    def observe(self, value: Union[int, float]) -> None:
        child = self._unlabeled()
        assert isinstance(child, HistogramChild)
        child.observe(value)

    def quantile(self, q: float) -> float:
        child = self._unlabeled()
        assert isinstance(child, HistogramChild)
        return child.quantile(q)

    @property
    def count(self) -> int:
        child = self._unlabeled()
        assert isinstance(child, HistogramChild)
        return child.count

    @property
    def sum(self) -> float:
        child = self._unlabeled()
        assert isinstance(child, HistogramChild)
        return child.sum


class MetricsRegistry:
    """A thread-safe, get-or-create namespace of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------ creation

    def counter(
        self, name: str, documentation: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(Counter, name, documentation, labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, documentation: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = self._get_or_create(Gauge, name, documentation, labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        documentation: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, documentation, labelnames, buckets=buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def _get_or_create(
        self,
        cls: Type[MetricFamily],
        name: str,
        documentation: str,
        labelnames: Sequence[str],
        **kwargs: object,
    ) -> MetricFamily:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} is already registered with labels "
                        f"{list(existing.labelnames)}, not {list(labelnames)}"
                    )
                return existing
            metric = cls(name, documentation, labelnames, **kwargs)  # type: ignore[arg-type]
            self._metrics[name] = metric
            return metric

    # ----------------------------------------------------------- inspection

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[MetricFamily]:
        """All families, sorted by name (stable export order)."""
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able snapshot of every family and sample.

        Histogram samples carry cumulative ``buckets`` (with an explicit
        ``"+Inf"``), exact ``count``/``sum`` and derived p50/p95/p99.
        """
        metrics: Dict[str, object] = {}
        for family in self.collect():
            samples: List[Dict[str, object]] = []
            for labelvalues, child in family.children():
                labels = dict(zip(family.labelnames, labelvalues))
                if isinstance(child, HistogramChild):
                    buckets = [
                        ["+Inf" if math.isinf(bound) else repr(bound), count]
                        for bound, count in child.bucket_counts()
                    ]
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": buckets,
                            "p50": child.quantile(0.50),
                            "p95": child.quantile(0.95),
                            "p99": child.quantile(0.99),
                        }
                    )
                else:
                    assert isinstance(child, (CounterChild, GaugeChild))
                    samples.append({"labels": labels, "value": child.value})
            metrics[family.name] = {
                "type": family.kind,
                "help": family.documentation,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        return {"schema": "repro/metrics@1", "metrics": metrics}

    def reset(self) -> None:
        """Drop every registered family (test isolation)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self)} families>"


# ------------------------------------------------------- process-global hook
#
# Same shape as repro.serving.faults: instrumented code does
#
#     registry = default_registry()
#     if registry is not None:
#         registry.counter(...).inc()
#
# so a disabled process pays one module attribute read per site.

_default: Optional[MetricsRegistry] = MetricsRegistry()
_swap_lock = threading.Lock()


def default_registry() -> Optional[MetricsRegistry]:
    """The process-global registry, or ``None`` when telemetry is off."""
    return _default


def set_default_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Swap the process-global registry; returns the previous one.

    Pass ``None`` to disable engine-level collection entirely.
    """
    global _default
    with _swap_lock:
        previous = _default
        _default = registry
    return previous


def reset_default_registry() -> MetricsRegistry:
    """Install and return a fresh process-global registry."""
    registry = MetricsRegistry()
    set_default_registry(registry)
    return registry


class use_registry:
    """Context manager scoping the process-global registry (tests).

    ::

        with use_registry(MetricsRegistry()) as registry:
            run_instrumented_code()
            assert registry.get("repro_sketch_rr_sets_total") is not None
    """

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        self._previous = set_default_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        set_default_registry(self._previous)
