"""Exporters: Prometheus text format v0.0.4, JSON snapshots, Chrome traces.

Three consumers are served from the same :class:`MetricsRegistry`
primitives:

* :func:`render_prometheus` — the text exposition format v0.0.4, with
  ``# HELP``/``# TYPE`` headers, escaped label values, cumulative
  histogram ``_bucket`` series ending at ``le="+Inf"`` and exact
  ``_sum``/``_count`` series;
* :func:`snapshot` / :func:`render_json` — a merged JSON snapshot
  (``repro/metrics@1``) that round-trips through ``json`` untouched;
* :func:`chrome_trace` — finished spans from a
  :class:`~repro.telemetry.tracing.TraceRecorder` as Chrome
  ``trace_event`` JSON (load it at ``chrome://tracing`` or in Perfetto
  for a flame-style view).

:class:`MetricsServer` serves ``GET /metrics`` (text format) and
``GET /metrics.json`` from a daemon thread — the backing for the CLI's
``repro serve --metrics-port``.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.telemetry.registry import (
    CounterChild,
    GaugeChild,
    HistogramChild,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, TraceRecorder

__all__ = [
    "MetricsServer",
    "chrome_trace",
    "render_json",
    "render_prometheus",
    "snapshot",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    """Prometheus sample-value formatting: integers bare, floats via repr."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_string(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + rendered + "}"


def _render_family(family: MetricFamily, lines: List[str]) -> None:
    if family.documentation:
        lines.append(f"# HELP {family.name} {_escape_help(family.documentation)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labelvalues, child in family.children():
        pairs = list(zip(family.labelnames, labelvalues))
        if isinstance(child, HistogramChild):
            for bound, cumulative in child.bucket_counts():
                bucket_pairs = pairs + [("le", _format_value(bound))]
                lines.append(
                    f"{family.name}_bucket{_label_string(bucket_pairs)} "
                    f"{cumulative}"
                )
            lines.append(
                f"{family.name}_sum{_label_string(pairs)} "
                f"{_format_value(child.sum)}"
            )
            lines.append(f"{family.name}_count{_label_string(pairs)} {child.count}")
        else:
            assert isinstance(child, (CounterChild, GaugeChild))
            lines.append(
                f"{family.name}{_label_string(pairs)} "
                f"{_format_value(child.value)}"
            )


def render_prometheus(*registries: Optional[MetricsRegistry]) -> str:
    """The registries' families in text exposition format v0.0.4.

    Multiple registries are merged by name; the first registry holding a
    name wins (families are never combined, so keep namespaces disjoint —
    the ``repro_<layer>_`` convention does).  ``None`` entries are
    skipped, so ``render_prometheus(service.telemetry, default_registry())``
    works whether or not global telemetry is enabled.
    """
    seen: Dict[str, MetricFamily] = {}
    for registry in registries:
        if registry is None:
            continue
        for family in registry.collect():
            seen.setdefault(family.name, family)
    lines: List[str] = []
    for name in sorted(seen):
        _render_family(seen[name], lines)
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(*registries: Optional[MetricsRegistry]) -> Dict[str, object]:
    """A merged JSON-able snapshot of the given registries.

    Same merge rule as :func:`render_prometheus`: first registry holding
    a metric name wins, ``None`` entries are skipped.
    """
    metrics: Dict[str, object] = {}
    for registry in registries:
        if registry is None:
            continue
        part = registry.snapshot()["metrics"]
        assert isinstance(part, dict)
        for name, family in part.items():
            metrics.setdefault(name, family)
    return {
        "schema": "repro/metrics@1",
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }


def render_json(
    *registries: Optional[MetricsRegistry], indent: Optional[int] = 2
) -> str:
    """:func:`snapshot` serialized with :mod:`json`."""
    return json.dumps(snapshot(*registries), indent=indent, sort_keys=False)


def chrome_trace(
    spans: Union[TraceRecorder, Iterable[Span]],
) -> Dict[str, object]:
    """Finished spans as Chrome ``trace_event`` JSON (complete events).

    Accepts a recorder (its ring buffer is read) or any iterable of
    :class:`Span`.  Timestamps are the recorder's monotonic clock in
    microseconds — relative, which is all the trace viewer needs.
    """
    if isinstance(spans, TraceRecorder):
        spans = spans.finished()
    events: List[Dict[str, object]] = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 0,
                "tid": span.thread,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class MetricsServer:
    """A daemon-thread HTTP endpoint exposing ``/metrics``.

    Parameters
    ----------
    registries:
        Registries to merge at scrape time (``None`` entries allowed).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, readable from
        :attr:`port` after construction.
    collect:
        Optional callback invoked before each scrape — the serving layer
        passes ``service.stats`` so sampled gauges (breaker states, queue
        depth) are fresh at scrape time.
    """

    def __init__(
        self,
        registries: Sequence[Optional[MetricsRegistry]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        collect: Optional[Callable[[], object]] = None,
    ) -> None:
        if port < 0 or port > 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {port}")
        self._registries = tuple(registries)
        self._collect = collect
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — http.server API
                if self.path.split("?")[0] == "/metrics":
                    body = server.scrape().encode("utf-8")
                    content_type = PROMETHEUS_CONTENT_TYPE
                elif self.path.split("?")[0] == "/metrics.json":
                    body = server.scrape_json().encode("utf-8")
                    content_type = "application/json; charset=utf-8"
                else:
                    self.send_error(404, "only /metrics and /metrics.json exist")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                """Silence per-request logging; scrapes are high-frequency."""

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )

    def scrape(self) -> str:
        if self._collect is not None:
            self._collect()
        return render_prometheus(*self._registries)

    def scrape_json(self) -> str:
        if self._collect is not None:
            self._collect()
        return render_json(*self._registries)

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<MetricsServer http://{self.host}:{self.port}/metrics>"
