"""Lightweight trace spans with deterministic IDs and injectable clocks.

A :class:`TraceRecorder` collects :class:`Span` objects into a bounded
ring buffer; :func:`span` is the module-level instrumentation hook::

    with span("rr_sample", model="ic", theta=20_000):
        draw_blocks()

When no recorder is installed the hook returns a shared no-op span after
a single module attribute read — the same idle-cost contract as
``repro.serving.faults.trigger`` — so library hot paths stay free to
instrument unconditionally.

**Determinism.**  Span IDs are minted from a SplitMix64 counter stream
seeded by the recorder (the same mixing constants the RR sampler and the
fault planner use), so two runs of the same workload produce identical
IDs and parent links.  Timings come from an injectable monotonic clock
(REP002: never the wall clock), which chaos tests replace with virtual
time.

Parent links are tracked per thread: a span opened while another span is
active on the same thread records that span as its parent, giving each
thread a well-formed span tree.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError, LifecycleError

__all__ = [
    "NULL_SPAN",
    "Span",
    "TraceRecorder",
    "current_recorder",
    "install_recorder",
    "recording",
    "span",
    "uninstall_recorder",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15

AttrValue = Union[str, int, float, bool, None]


def _splitmix64(value: int) -> int:
    """The engines' SplitMix64 finalizer (same constants as the RR sampler)."""
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class Span:
    """One timed, attributed region of execution.

    Usable only through :meth:`TraceRecorder.span` / :func:`span`; entering
    starts the clock and links the parent, exiting stops the clock and
    commits the span to the recorder's ring buffer.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "thread",
        "_recorder",
    )

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        attributes: Dict[str, AttrValue],
    ) -> None:
        self.name = name
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.start = 0.0
        self.end: Optional[float] = None
        self.attributes = attributes
        self.thread = 0
        self._recorder = recorder

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attributes: AttrValue) -> "Span":
        """Attach attributes discovered mid-span; returns self."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        self._recorder._begin(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._recorder._finish(self)

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.span_id or '?'} {self.duration:.6f}s>"


class _NullSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, **attributes: AttrValue) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects finished spans into a bounded ring buffer.

    Parameters
    ----------
    seed:
        Seeds the SplitMix64 stream span IDs are minted from; the same
        seed and span order reproduce the same IDs.
    clock:
        Monotonic time source for span start/end.  Injectable so virtual
        clocks can drive deterministic timing tests (REP002).
    capacity:
        Ring-buffer size; once full, the oldest finished span is dropped
        and counted in :attr:`dropped`.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        capacity: int = 4096,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.dropped = 0
        self._seed = int(seed) & _MASK64
        self._clock = clock
        self._counter = 0
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque()
        self._local = threading.local()
        self._threads: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle

    def span(self, name: str, **attributes: AttrValue) -> Span:
        """A context manager timing one region under ``name``."""
        return Span(self, name, dict(attributes))

    def _mint_id(self) -> str:
        with self._lock:
            self._counter += 1
            token = _splitmix64((self._seed * _GOLDEN + self._counter) & _MASK64)
        return f"{token:016x}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_ordinal(self) -> int:
        """Small stable per-thread number (first-seen order), for exports."""
        ident = threading.get_ident()
        with self._lock:
            ordinal = self._threads.get(ident)
            if ordinal is None:
                ordinal = self._threads[ident] = len(self._threads)
        return ordinal

    def _begin(self, span: Span) -> None:
        if span.end is not None or span.span_id:
            raise LifecycleError("a Span context manager is single-use")
        stack = self._stack()
        span.span_id = self._mint_id()
        span.parent_id = stack[-1].span_id if stack else None
        span.thread = self._thread_ordinal()
        stack.append(span)
        span.start = self._clock()

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if span in stack:
            # Pop through the span even if an inner span leaked (an
            # exception skipped its __exit__): the stack stays truthful.
            while stack and stack.pop() is not span:
                pass
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._spans.popleft()
                self.dropped += 1
            self._spans.append(span)

    # ------------------------------------------------------------ inspection

    def finished(self) -> List[Span]:
        """Finished spans, oldest first (a copy)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return f"<TraceRecorder {len(self)}/{self.capacity} spans>"


# ------------------------------------------------------- process-global hook

_active: Optional[TraceRecorder] = None
_swap_lock = threading.Lock()


def span(name: str, **attributes: AttrValue) -> Union[Span, _NullSpan]:
    """Open a span on the installed recorder, or a no-op when none is.

    The disabled path is one module attribute read plus a ``None`` check.
    """
    recorder = _active
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attributes)


def current_recorder() -> Optional[TraceRecorder]:
    return _active


def install_recorder(
    recorder: Optional[TraceRecorder],
) -> Optional[TraceRecorder]:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _active
    with _swap_lock:
        previous = _active
        _active = recorder
    return previous


def uninstall_recorder() -> Optional[TraceRecorder]:
    """Remove the installed recorder; returns it."""
    return install_recorder(None)


class recording:
    """Context manager scoping an installed recorder::

        recorder = TraceRecorder(seed=7)
        with recording(recorder):
            run_instrumented_code()
        tree = [s.to_dict() for s in recorder.finished()]
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder
        self._previous: Optional[TraceRecorder] = None

    def __enter__(self) -> TraceRecorder:
        self._previous = install_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info: object) -> None:
        install_recorder(self._previous)
